//! Structured reports of a suite run, and their renderers.
//!
//! [`SuiteReport`] is the machine-readable result: JSON in, JSON out, with a
//! `schema_version` gate so consumers can detect drift. It deliberately
//! contains **no wall-clock measurements** — every field is a deterministic
//! function of the suite definition, which is what makes reports
//! byte-identical across `--jobs 1` and `--jobs N` (and across cache
//! hits/misses). Timings are presented separately by the human renderer.

use crate::error::EngineError;
use crate::executor::{ScenarioOutcome, SuiteOutcome};
use budget_buffer::explore::budget_reduction_from_totals;
use budget_buffer::report::{format_table, mapping_report};
use budget_buffer::MappingReport;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Version of the report schema; bump on breaking shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Cache behaviour of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Whether memoization was enabled.
    pub enabled: bool,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to solve.
    pub misses: u64,
}

/// One sweep point of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointReport {
    /// Capacity cap of the point (`None` for single solves).
    pub capacity_cap: Option<u64>,
    /// Whether a mapping was found.
    pub feasible: bool,
    /// The error, for infeasible points.
    pub error: Option<String>,
    /// The name-keyed mapping, for feasible points.
    pub mapping: Option<MappingReport>,
    /// Sum of all budgets, in cycles.
    pub total_budget: Option<u64>,
    /// Total storage, in container-size units.
    pub total_storage: Option<u64>,
    /// Worst steady-state period measured by the validation replay, when
    /// requested.
    pub measured_period: Option<f64>,
    /// Whether the measured period met the requirement (plus transient
    /// tolerance).
    pub guarantee_ok: Option<bool>,
    /// Buffers whose fill level the validation replay observed.
    pub buffers_checked: Option<u64>,
    /// Buffers whose observed high-water mark exceeded the computed
    /// capacity.
    pub buffer_violations: Option<u64>,
}

/// One scenario of the suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Flow name.
    pub flow: String,
    /// Number of tasks of the workload.
    pub tasks: u64,
    /// Number of buffers of the workload.
    pub buffers: u64,
    /// One report per sweep point, in sweep order.
    pub points: Vec<PointReport>,
    /// Budget reduction between consecutive feasible sweep points
    /// (Figure 2(b)), when the scenario requested it: `(cap, drop)` pairs
    /// where `drop` is the budget saved by allowing `cap` containers
    /// compared to the previous feasible point.
    pub budget_reduction: Option<Vec<(u64, f64)>>,
}

/// The machine-readable result of a suite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Name of the suite.
    pub suite: String,
    /// The engine that produced the report.
    pub generator: String,
    /// Cache behaviour of the run.
    pub cache: CacheReport,
    /// One report per scenario, in suite order.
    pub scenarios: Vec<ScenarioReport>,
}

impl SuiteReport {
    /// Builds the report of a run.
    pub fn from_outcome(outcome: &SuiteOutcome) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            suite: outcome.suite.clone(),
            generator: format!("bbs-engine {}", env!("CARGO_PKG_VERSION")),
            cache: CacheReport {
                enabled: outcome.cache_enabled,
                hits: outcome.cache.hits,
                misses: outcome.cache.misses,
            },
            scenarios: outcome.scenarios.iter().map(scenario_report).collect(),
        }
    }

    /// Serialises the report as pretty JSON (ends with a newline).
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("report serialises to JSON");
        json.push('\n');
        json
    }

    /// Parses and validates a report.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidInput`] for malformed JSON or a report
    /// violating the schema invariants.
    pub fn from_json(json: &str) -> Result<Self, EngineError> {
        let report: Self = serde_json::from_str(json)
            .map_err(|e| EngineError::InvalidInput(format!("report does not parse: {e}")))?;
        report.validate()?;
        Ok(report)
    }

    /// Checks the schema invariants beyond mere JSON shape.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidInput`] naming the first violation.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(EngineError::InvalidInput(format!(
                "unsupported schema_version {} (expected {SCHEMA_VERSION})",
                self.schema_version
            )));
        }
        if self.scenarios.is_empty() {
            return Err(EngineError::InvalidInput(
                "report contains no scenarios".to_string(),
            ));
        }
        for scenario in &self.scenarios {
            if scenario.points.is_empty() {
                return Err(EngineError::InvalidInput(format!(
                    "scenario `{}` has no points",
                    scenario.scenario
                )));
            }
            for point in &scenario.points {
                if point.feasible {
                    if point.mapping.is_none()
                        || point.total_budget.is_none()
                        || point.total_storage.is_none()
                    {
                        return Err(EngineError::InvalidInput(format!(
                            "feasible point of `{}` is missing its mapping",
                            scenario.scenario
                        )));
                    }
                } else if point.error.is_none() {
                    return Err(EngineError::InvalidInput(format!(
                        "infeasible point of `{}` carries no error",
                        scenario.scenario
                    )));
                }
            }
        }
        Ok(())
    }

    /// Renders the report as long-format CSV:
    /// `scenario,flow,capacity_cap,record,name,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scenario,flow,capacity_cap,record,name,value\n");
        for scenario in &self.scenarios {
            for point in &scenario.points {
                let cap = point
                    .capacity_cap
                    .map(|c| c.to_string())
                    .unwrap_or_default();
                let mut push = |record: &str, name: &str, value: String| {
                    let _ = writeln!(
                        out,
                        "{},{},{},{},{},{}",
                        csv_field(&scenario.scenario),
                        csv_field(&scenario.flow),
                        cap,
                        record,
                        csv_field(name),
                        csv_field(&value)
                    );
                };
                push("feasible", "", u64::from(point.feasible).to_string());
                if let Some(error) = &point.error {
                    push("error", "", error.clone());
                }
                if let Some(mapping) = &point.mapping {
                    for (task, budget) in &mapping.budgets {
                        push("budget", task, budget.to_string());
                    }
                    for (buffer, capacity) in &mapping.capacities {
                        push("capacity", buffer, capacity.to_string());
                    }
                    push(
                        "solver_iterations",
                        "",
                        mapping.solver_iterations.to_string(),
                    );
                }
                if let Some(total) = point.total_budget {
                    push("total_budget", "", total.to_string());
                }
                if let Some(total) = point.total_storage {
                    push("total_storage", "", total.to_string());
                }
                if let Some(period) = point.measured_period {
                    push("measured_period", "", format!("{period:?}"));
                }
                if let Some(ok) = point.guarantee_ok {
                    push("guarantee_ok", "", u64::from(ok).to_string());
                }
                if let Some(checked) = point.buffers_checked {
                    push("buffers_checked", "", checked.to_string());
                }
                if let Some(violations) = point.buffer_violations {
                    push("buffer_violations", "", violations.to_string());
                }
            }
        }
        out
    }

    /// Renders the report as the markdown document checked in as
    /// `EXPERIMENTS.md`. Deterministic: regenerating on an unchanged tree
    /// produces identical bytes.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Experiments — suite `{}`", self.suite);
        out.push('\n');
        let _ = writeln!(
            out,
            "Measured results of every scenario, produced by the batch engine:"
        );
        out.push('\n');
        let _ = writeln!(out, "```sh");
        let _ = writeln!(
            out,
            "cargo run --release -p bbs-engine --bin bbs -- run --suite {} --markdown EXPERIMENTS.md",
            self.suite
        );
        let _ = writeln!(out, "```");
        out.push('\n');
        let _ = writeln!(
            out,
            "(`--suite {}` assumes the built-in suite of that name; a suite that \
             came from a file regenerates with `--file <suite.json>` instead.)",
            self.suite
        );
        out.push('\n');
        let _ = writeln!(
            out,
            "The tables are deterministic (no wall-clock data), so this file only \
             changes when the solver, the model or the suite definition changes. \
             Solve-time tables are printed by `bbs run` and by `cargo bench`."
        );
        for scenario in &self.scenarios {
            out.push('\n');
            let _ = writeln!(
                out,
                "## `{}` — {} flow, {} tasks, {} buffers",
                scenario.scenario, scenario.flow, scenario.tasks, scenario.buffers
            );
            out.push('\n');
            let (header, rows) = scenario_table(scenario);
            out.push_str(&markdown_table(&header, &rows));
            if let Some(deltas) = &scenario.budget_reduction {
                out.push('\n');
                let _ = writeln!(out, "Budget reduction per extra container:");
                out.push('\n');
                let rows: Vec<Vec<String>> = deltas
                    .iter()
                    .map(|(cap, d)| vec![cap.to_string(), format!("{d:.1}")])
                    .collect();
                out.push_str(&markdown_table(
                    &[
                        "cap (containers)".to_string(),
                        "delta budget (cycles)".to_string(),
                    ],
                    &rows,
                ));
            }
        }
        out
    }

    /// Renders every scenario as an aligned text table (the `bbs run`
    /// stdout format, without timings).
    pub fn to_tables(&self) -> String {
        let mut out = String::new();
        for scenario in &self.scenarios {
            let _ = writeln!(
                out,
                "== {} ({} flow, {} tasks, {} buffers) ==",
                scenario.scenario, scenario.flow, scenario.tasks, scenario.buffers
            );
            let (header, rows) = scenario_table(scenario);
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            out.push_str(&format_table(&header_refs, &rows));
            if let Some(deltas) = &scenario.budget_reduction {
                let rows: Vec<Vec<String>> = deltas
                    .iter()
                    .map(|(cap, d)| vec![cap.to_string(), format!("{d:.1}")])
                    .collect();
                out.push_str(&format_table(
                    &["cap (containers)", "delta budget (cycles)"],
                    &rows,
                ));
            }
            out.push('\n');
        }
        out
    }
}

fn scenario_report(outcome: &ScenarioOutcome) -> ScenarioReport {
    let points: Vec<PointReport> = outcome
        .points
        .iter()
        .map(|point| match &point.result {
            Ok(mapping) => PointReport {
                capacity_cap: point.capacity_cap,
                feasible: true,
                error: None,
                mapping: Some(mapping_report(&outcome.configuration, mapping)),
                total_budget: Some(mapping.total_budget()),
                total_storage: Some(mapping.total_storage(&outcome.configuration)),
                measured_period: point.validation.as_ref().map(|v| v.measured_period),
                guarantee_ok: point.validation.as_ref().map(|v| v.period_ok),
                buffers_checked: point.validation.as_ref().map(|v| v.buffers_checked),
                buffer_violations: point.validation.as_ref().map(|v| v.buffer_violations),
            },
            Err(error) => PointReport {
                capacity_cap: point.capacity_cap,
                feasible: false,
                error: Some(error.to_string()),
                mapping: None,
                total_budget: None,
                total_storage: None,
                measured_period: None,
                guarantee_ok: None,
                buffers_checked: None,
                buffer_violations: None,
            },
        })
        .collect();
    let budget_reduction = if outcome.scenario.derivative.unwrap_or(false) {
        // Deltas run between *consecutive feasible* sweep points and are
        // labelled with the arriving point's capacity cap, so a gap in the
        // sweep (an infeasible cap) cannot silently shift the labels.
        let feasible: Vec<(u64, u64)> = outcome
            .points
            .iter()
            .filter_map(|p| match (&p.result, p.capacity_cap) {
                (Ok(mapping), Some(cap)) => Some((cap, mapping.total_budget())),
                _ => None,
            })
            .collect();
        let totals: Vec<u64> = feasible.iter().map(|&(_, total)| total).collect();
        let deltas = budget_reduction_from_totals(&totals);
        Some(
            feasible
                .iter()
                .skip(1)
                .map(|&(cap, _)| cap)
                .zip(deltas)
                .collect(),
        )
    } else {
        None
    };
    ScenarioReport {
        scenario: outcome.scenario.name.clone(),
        flow: outcome.flow.as_str().to_string(),
        tasks: outcome.configuration.num_tasks() as u64,
        buffers: outcome.configuration.num_buffers() as u64,
        points,
        budget_reduction,
    }
}

/// Builds the shared table shape (header + rows) of one scenario. Per-task
/// budgets are listed individually for small graphs and summarised for
/// large ones.
fn scenario_table(scenario: &ScenarioReport) -> (Vec<String>, Vec<Vec<String>>) {
    let simulated = scenario.points.iter().any(|p| p.measured_period.is_some());
    let mut header = vec![
        "cap".to_string(),
        "budgets (cycles)".to_string(),
        "total budget".to_string(),
        "total storage".to_string(),
        "solver iterations".to_string(),
        "status".to_string(),
    ];
    if simulated {
        header.push("measured period".to_string());
        header.push("guarantee".to_string());
        header.push("buffers".to_string());
    }
    let rows = scenario
        .points
        .iter()
        .map(|point| {
            let mut row = vec![
                point
                    .capacity_cap
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                point
                    .mapping
                    .as_ref()
                    .map(|m| {
                        if m.budgets.len() <= 6 {
                            m.budgets
                                .values()
                                .map(u64::to_string)
                                .collect::<Vec<_>>()
                                .join("/")
                        } else {
                            format!("({} tasks)", m.budgets.len())
                        }
                    })
                    .unwrap_or_else(|| "-".to_string()),
                point
                    .total_budget
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                point
                    .total_storage
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                point
                    .mapping
                    .as_ref()
                    .map(|m| m.solver_iterations.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                if point.feasible {
                    "feasible".to_string()
                } else {
                    format!(
                        "infeasible: {}",
                        point.error.as_deref().unwrap_or("unknown")
                    )
                },
            ];
            if simulated {
                row.push(
                    point
                        .measured_period
                        .map(|p| format!("{p:.3}"))
                        .unwrap_or_else(|| "-".to_string()),
                );
                row.push(match point.guarantee_ok {
                    Some(true) => "ok".to_string(),
                    Some(false) => "VIOLATED".to_string(),
                    None => "-".to_string(),
                });
                row.push(match (point.buffers_checked, point.buffer_violations) {
                    (Some(checked), Some(0)) => format!("{checked} ok"),
                    (Some(checked), Some(over)) => format!("{over}/{checked} OVER"),
                    _ => "-".to_string(),
                });
            }
            row
        })
        .collect();
    (header, rows)
}

/// Escapes one CSV field per RFC 4180: fields containing a comma, quote or
/// line break are quoted, with inner quotes doubled. Scenario, task and
/// buffer names are arbitrary user strings, so they all go through here.
fn csv_field(raw: &str) -> String {
    if raw.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

/// Renders a GitHub-style markdown table.
fn markdown_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| " --- ").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Renders the run summary with timings and cache markers — the part of the
/// `bbs run` output that is *not* deterministic across disk-cache states and
/// therefore lives outside [`SuiteReport`].
pub fn render_timing_summary(outcome: &SuiteOutcome) -> String {
    use crate::cache::SolveSource;

    let mut out = String::new();
    let points: usize = outcome.scenarios.iter().map(|s| s.points.len()).sum();
    let solve_time: f64 = outcome
        .scenarios
        .iter()
        .flat_map(|s| &s.points)
        .map(|p| p.solve_time.as_secs_f64())
        .sum();
    let _ = writeln!(
        out,
        "suite `{}`: {} scenarios, {} points, cache {} ({} hits / {} misses), \
         solve time {:.1} ms, wall time {:.1} ms",
        outcome.suite,
        outcome.scenarios.len(),
        points,
        if outcome.cache_enabled { "on" } else { "off" },
        outcome.cache.hits,
        outcome.cache.misses,
        solve_time * 1e3,
        outcome.wall_time.as_secs_f64() * 1e3,
    );
    if let Some(store) = &outcome.store {
        // The remote segment appears only when a remote tier is attached:
        // local-only runs keep the historical line byte-for-byte.
        if store.remote_enabled {
            let _ = writeln!(
                out,
                "store: {} disk hits / {} remote hits / {} fresh solves / {} newly stored / {} rejected",
                store.disk_hits, store.remote_hits, store.fresh_solves, store.stored, store.rejected
            );
            // The breaker line appears only once the breaker has tripped:
            // a healthy remote run stays byte-identical to before the
            // breaker existed.
            if store.breaker_opens > 0 {
                let _ = writeln!(
                    out,
                    "remote breaker: {} opens / {} closes / {} probes / {} dropped puts{}",
                    store.breaker_opens,
                    store.breaker_closes,
                    store.breaker_probes,
                    store.dropped_puts,
                    if store.breaker_open { " / open" } else { "" }
                );
            }
        } else {
            let _ = writeln!(
                out,
                "store: {} disk hits / {} fresh solves / {} newly stored / {} rejected",
                store.disk_hits, store.fresh_solves, store.stored, store.rejected
            );
        }
    }
    let pool = &outcome.executor;
    let _ = writeln!(
        out,
        "pool: {} workers ({}), {} local pops / {} steals / {} caught panics",
        pool.workers,
        if pool.stealing {
            "work-stealing"
        } else {
            "shared queue"
        },
        pool.local_pops,
        pool.steals,
        pool.caught_panics,
    );
    for scenario in &outcome.scenarios {
        let scenario_time: f64 = scenario
            .points
            .iter()
            .map(|p| p.solve_time.as_secs_f64())
            .sum();
        let memo_hits = scenario
            .points
            .iter()
            .filter(|p| p.source == SolveSource::Memory)
            .count();
        let disk_hits = scenario
            .points
            .iter()
            .filter(|p| p.source == SolveSource::Disk)
            .count();
        let _ = writeln!(
            out,
            "  {:<28} {:>3} points  {:>9.2} ms  {} memo hits, {} disk hits",
            scenario.scenario.name,
            scenario.points.len(),
            scenario_time * 1e3,
            memo_hits,
            disk_hits
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_suite, RunSettings};
    use crate::suites::smoke_suite;

    fn smoke_report() -> SuiteReport {
        let outcome = run_suite(&smoke_suite(), &RunSettings::default()).unwrap();
        SuiteReport::from_outcome(&outcome)
    }

    #[test]
    fn report_round_trips_and_validates() {
        let report = smoke_report();
        report.validate().unwrap();
        let back = SuiteReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn report_json_contains_no_wall_clock_fields() {
        let json = smoke_report().to_json();
        for forbidden in ["time", "duration", "elapsed"] {
            assert!(
                !json.to_lowercase().contains(forbidden),
                "report JSON must not contain `{forbidden}`"
            );
        }
    }

    #[test]
    fn validation_rejects_broken_reports() {
        let mut report = smoke_report();
        report.schema_version = 999;
        assert!(report.validate().is_err());

        let mut report = smoke_report();
        report.scenarios.clear();
        assert!(report.validate().is_err());

        let mut report = smoke_report();
        report.scenarios[0].points[0].mapping = None;
        assert!(report.validate().is_err());

        assert!(SuiteReport::from_json("{not json").is_err());
    }

    #[test]
    fn csv_is_long_format_with_header() {
        let csv = smoke_report().to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "scenario,flow,capacity_cap,record,name,value"
        );
        assert!(csv.contains("smoke-pc,joint,1,budget,wa,"));
        assert!(csv.contains("total_budget"));
    }

    #[test]
    fn csv_quotes_fields_containing_commas() {
        use crate::scenario::{Scenario, Suite, SweepSpec, WorkloadSpec};
        use bbs_taskgraph::presets::PresetSpec;
        let suite = Suite::new(
            "quoting",
            vec![Scenario::new(
                "pc, capped",
                WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
            )
            .with_sweep(SweepSpec::list([4u64]))],
        );
        let outcome = run_suite(&suite, &RunSettings::default()).unwrap();
        let csv = SuiteReport::from_outcome(&outcome).to_csv();
        for line in csv.lines().skip(1) {
            assert!(line.starts_with("\"pc, capped\","), "unquoted name: {line}");
        }
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
    }

    #[test]
    fn derivative_labels_survive_sweep_gaps() {
        use crate::scenario::{Scenario, Suite, SweepSpec, WorkloadSpec};
        use bbs_taskgraph::presets::PresetSpec;
        // Cap 1 is infeasible (below the ring's 2 initial tokens), so the
        // first delta pairs caps 2 and 3 and must be labelled with cap 3.
        let suite = Suite::new(
            "gap",
            vec![Scenario::new(
                "ring-gap",
                WorkloadSpec::preset(
                    PresetSpec::named("ring")
                        .with_tasks(3)
                        .with_initial_tokens(2),
                ),
            )
            .with_sweep(SweepSpec::range(1, 4))
            .with_derivative()
            .expecting_infeasible()],
        );
        let outcome = run_suite(&suite, &RunSettings::default()).unwrap();
        let report = SuiteReport::from_outcome(&outcome);
        assert!(!report.scenarios[0].points[0].feasible);
        let deltas = report.scenarios[0].budget_reduction.as_ref().unwrap();
        let caps: Vec<u64> = deltas.iter().map(|&(cap, _)| cap).collect();
        assert_eq!(caps, vec![3, 4], "labels skip the infeasible cap 1");
    }

    #[test]
    fn markdown_and_tables_render_every_scenario() {
        let report = smoke_report();
        let markdown = report.to_markdown();
        let tables = report.to_tables();
        for scenario in &report.scenarios {
            assert!(markdown.contains(&format!("## `{}`", scenario.scenario)));
            assert!(tables.contains(&scenario.scenario));
        }
        assert!(markdown.contains("Budget reduction per extra container"));
    }
}
