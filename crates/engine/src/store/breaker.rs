//! The remote tier's circuit breaker: deterministic fail-fast with
//! self-healing probes.
//!
//! The remote store used to degrade *permanently*: the first unrecoverable
//! transport error marked the backend broken for the rest of the process.
//! That is the right call for a mistyped address, but a peer that restarts
//! mid-run (deploy, OOM, network blip) stayed invisible forever. The
//! breaker replaces the one-way latch with the classic three-state machine:
//!
//! * **Closed** — traffic flows; consecutive transport failures are
//!   counted, and reaching [`BreakerConfig::threshold`] opens the breaker.
//! * **Open** — every operation fails fast without touching the network,
//!   so a dead peer costs nanoseconds per key, not a timeout per key.
//! * **Probe** (half-open) — once the current backoff has elapsed, exactly
//!   the next caller is let through as a health probe. A successful probe
//!   closes the breaker and resets the backoff; a failed one re-arms the
//!   open state and doubles the backoff up to
//!   [`BreakerConfig::backoff_cap`].
//!
//! Everything is driven by the callers' own traffic — there is no timer
//! thread. All decisions are taken under one mutex, so concurrent callers
//! see a consistent state; the counters ([`opens`](CircuitBreaker::opens),
//! [`closes`](CircuitBreaker::closes), [`probes`](CircuitBreaker::probes))
//! surface in [`StoreStats`](crate::StoreStats) and `bbs client stats`.
//!
//! Only *transport* failures feed the breaker. Semantic refusals — a peer
//! that answers but rejects the request — are the caller's business: a
//! reachable peer that refuses every key should be dropped, not probed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transport failures that open the breaker.
    pub threshold: u32,
    /// Initial delay before the first health probe after opening; also the
    /// value the backoff resets to when a probe succeeds.
    pub probe_backoff: Duration,
    /// Upper bound the per-failure backoff doubling saturates at.
    pub backoff_cap: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            threshold: 3,
            probe_backoff: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// What the breaker tells a caller about to touch the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// The breaker is closed: proceed normally.
    Closed,
    /// The breaker is open and the backoff has elapsed: this caller should
    /// perform a health probe (and report the result back).
    Probe,
    /// The breaker is open and the backoff has not elapsed: fail fast.
    Open,
}

/// The mutable half of the breaker, guarded by one mutex.
#[derive(Debug)]
struct BreakerInner {
    consecutive_failures: u32,
    open: bool,
    /// When the open state was (re-)armed; probes wait `backoff` past it.
    opened_at: Instant,
    backoff: Duration,
}

/// A deterministic three-state circuit breaker (see the [module
/// docs](self)).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<BreakerInner>,
    opens: AtomicU64,
    closes: AtomicU64,
    probes: AtomicU64,
}

impl CircuitBreaker {
    /// A breaker with the given tuning; starts closed.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: Mutex::new(BreakerInner {
                consecutive_failures: 0,
                open: false,
                opened_at: Instant::now(),
                backoff: config.probe_backoff,
            }),
            opens: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    /// What a caller about to touch the network should do right now.
    pub fn gate(&self) -> Gate {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !state.open {
            Gate::Closed
        } else if state.opened_at.elapsed() >= state.backoff {
            Gate::Probe
        } else {
            Gate::Open
        }
    }

    /// Records that a health probe is being attempted.
    pub fn record_probe(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful round trip: resets the failure streak and, when
    /// the breaker was open, closes it and resets the backoff.
    pub fn record_success(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.consecutive_failures = 0;
        if state.open {
            state.open = false;
            state.backoff = self.config.probe_backoff;
            self.closes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a transport failure: while closed, extends the streak and
    /// opens at the threshold; while open (a failed probe), re-arms the
    /// backoff window and doubles it up to the cap.
    pub fn record_failure(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.open {
            state.opened_at = Instant::now();
            state.backoff = (state.backoff * 2).min(self.config.backoff_cap);
            return;
        }
        state.consecutive_failures += 1;
        if state.consecutive_failures >= self.config.threshold {
            state.open = true;
            state.opened_at = Instant::now();
            state.backoff = self.config.probe_backoff;
            state.consecutive_failures = 0;
            self.opens.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the breaker is open right now.
    pub fn is_open(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .open
    }

    /// Times the breaker opened.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Times a successful probe closed the breaker.
    pub fn closes(&self) -> u64 {
        self.closes.load(Ordering::Relaxed)
    }

    /// Health probes attempted while open.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

/// A remote tier's health counters, as merged into
/// [`StoreStats`](crate::StoreStats) by the store and surfaced by
/// `bbs client stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteHealth {
    /// Whether the circuit breaker is open right now.
    pub breaker_open: bool,
    /// Times the breaker opened.
    pub breaker_opens: u64,
    /// Times a successful probe closed it again.
    pub breaker_closes: u64,
    /// Health probes attempted while open.
    pub breaker_probes: u64,
    /// Write-behind puts dropped (queue full, or breaker open when their
    /// turn came).
    pub dropped_puts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A config whose probes are due immediately — tests never sleep.
    fn instant_probes() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            probe_backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    #[test]
    fn opens_at_the_threshold_and_a_probe_heals_it() {
        let breaker = CircuitBreaker::new(instant_probes());
        assert_eq!(breaker.gate(), Gate::Closed);
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(breaker.gate(), Gate::Closed, "below threshold");
        breaker.record_failure();
        assert!(breaker.is_open());
        assert_eq!(breaker.opens(), 1);
        // Zero backoff: the very next caller is the probe.
        assert_eq!(breaker.gate(), Gate::Probe);
        breaker.record_probe();
        // A failed probe keeps it open (backoff stays zero at the cap).
        breaker.record_failure();
        assert!(breaker.is_open());
        assert_eq!(breaker.gate(), Gate::Probe);
        // A successful probe closes it.
        breaker.record_probe();
        breaker.record_success();
        assert!(!breaker.is_open());
        assert_eq!(breaker.gate(), Gate::Closed);
        assert_eq!(breaker.closes(), 1);
        assert_eq!(breaker.probes(), 2);
    }

    #[test]
    fn successes_reset_the_failure_streak() {
        let breaker = CircuitBreaker::new(instant_probes());
        breaker.record_failure();
        breaker.record_failure();
        breaker.record_success();
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(breaker.gate(), Gate::Closed, "streak was broken");
        breaker.record_failure();
        assert!(breaker.is_open());
    }

    #[test]
    fn nonzero_backoff_fails_fast_until_it_elapses() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            threshold: 1,
            probe_backoff: Duration::from_secs(3600),
            backoff_cap: Duration::from_secs(3600),
        });
        breaker.record_failure();
        assert!(breaker.is_open());
        // An hour of backoff has clearly not elapsed: fail fast, no probe.
        assert_eq!(breaker.gate(), Gate::Open);
    }

    #[test]
    fn reopening_after_a_close_needs_a_full_streak_again() {
        let breaker = CircuitBreaker::new(instant_probes());
        for _ in 0..3 {
            breaker.record_failure();
        }
        breaker.record_success();
        assert!(!breaker.is_open());
        breaker.record_failure();
        breaker.record_failure();
        assert!(!breaker.is_open(), "the close reset the streak");
        breaker.record_failure();
        assert!(breaker.is_open());
        assert_eq!(breaker.opens(), 2);
    }
}
