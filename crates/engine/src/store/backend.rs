//! The [`StoreBackend`] trait and the default [`LocalDirBackend`].
//!
//! A backend is the *I/O half* of the persistent store: it moves opaque
//! entry **bodies** (the canonical JSON text of a stored solve) in and out
//! of some medium, addressed by the 16-hex-digit content hash of the full
//! cache key. Everything semantic — key derivation, collision guards,
//! entry validation, retention planning — stays in
//! [`SolveStore`](crate::SolveStore), so every backend shares one
//! correctness story.
//!
//! Bodies cross the trait boundary as **uncompressed JSON text**. How a
//! backend represents them at rest is its own business: the local
//! directory backend stores `v2` entries as [`minilz`]-compressed files
//! (and still reads plain-JSON `v1` files), while the remote backend ships
//! the text verbatim inside protocol frames. Keeping compression below the
//! trait means the wire format needs no binary envelope and a remote peer
//! can re-compress however it likes.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Version of the on-disk entry format written by this build. Entries live
/// under a `v<N>` directory; lookups read the current version first and
/// fall back to the still-supported previous one (see
/// [`OLDEST_READABLE_SCHEMA`]).
pub const STORE_SCHEMA_VERSION: u64 = 2;

/// Oldest entry format this build still reads: `v1` plain-JSON files
/// migrate lazily (or in one pass via `bbs cache gc --recompress`) instead
/// of becoming invisible.
pub const OLDEST_READABLE_SCHEMA: u64 = 1;

/// One entry body as a backend hands it to the store: the uncompressed
/// canonical JSON text plus the container version it was read from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEntry {
    /// On-disk format version of the container the body came out of
    /// (`1` = plain JSON file, `2` = minilz-compressed file).
    pub version: u64,
    /// The entry body: one JSON object repeating the full canonical key
    /// plus the stored outcome.
    pub body: String,
}

/// One entry file as seen by a [`StoreBackend::list`] scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// Path of the entry file.
    pub path: PathBuf,
    /// On-disk format version of the file (its `v<N>` directory).
    pub version: u64,
    /// Last-modified time; the scan time when the filesystem cannot report
    /// one (see [`StoreEntry::mtime_readable`]).
    pub modified: SystemTime,
    /// Whether the filesystem reported a modification time. Entries without
    /// one sort as the newest files of the scan and are exempt from
    /// age-based eviction.
    pub mtime_readable: bool,
    /// Physical file size in bytes (compressed size for `v2` entries).
    pub bytes: u64,
}

/// Where solve-store entry bodies physically live.
///
/// Implementations must be safe to share across the executor's worker
/// threads (`Send + Sync`); the store serialises nothing around them. The
/// contract per method:
///
/// * [`get`](Self::get) — `Ok(None)` is a plain miss; `Err` means a body
///   exists but could not be read back (corrupt container, I/O failure).
/// * [`put`](Self::put) — makes `body` the *only* representation stored at
///   `address`, superseding any older-version container for the same
///   address; returns the physical bytes written.
/// * [`list`](Self::list)/[`read_body`](Self::read_body)/
///   [`remove`](Self::remove)/[`clear`](Self::clear) — the management
///   surface behind `bbs cache stats|gc|clear`. Backends that cannot
///   enumerate remotely (the network tier) return
///   [`io::ErrorKind::Unsupported`]; management then runs where the data
///   lives.
pub trait StoreBackend: Send + Sync + fmt::Debug {
    /// Human-readable identity for logs and errors.
    fn describe(&self) -> String;

    /// Fetches the body stored at `address` (16 lowercase hex digits).
    ///
    /// # Errors
    ///
    /// Any error other than a plain miss: unreadable file, corrupt
    /// compression framing, transport failure.
    fn get(&self, address: &str) -> io::Result<Option<RawEntry>>;

    /// Stores `body` at `address`, superseding any previous (and any
    /// previous-version) container. Returns the physical bytes written.
    ///
    /// # Errors
    ///
    /// The underlying I/O or transport error.
    fn put(&self, address: &str, body: &str) -> io::Result<u64>;

    /// Every entry container, sorted oldest-first (mtime, ties by path).
    ///
    /// # Errors
    ///
    /// The underlying scan error, or [`io::ErrorKind::Unsupported`] on
    /// backends without a management surface.
    fn list(&self) -> io::Result<Vec<StoreEntry>>;

    /// Reads the body of one listed entry back out of its container.
    ///
    /// # Errors
    ///
    /// The underlying read/decode error, or
    /// [`io::ErrorKind::Unsupported`].
    fn read_body(&self, entry: &StoreEntry) -> io::Result<RawEntry>;

    /// Removes one listed entry. `Ok(false)` means it was already gone (a
    /// concurrent pass won the race) — not an error.
    ///
    /// # Errors
    ///
    /// The underlying removal error, or [`io::ErrorKind::Unsupported`].
    fn remove(&self, entry: &StoreEntry) -> io::Result<bool>;

    /// Removes every entry of every version. Returns the number of entry
    /// containers removed.
    ///
    /// # Errors
    ///
    /// The underlying removal error, or [`io::ErrorKind::Unsupported`].
    fn clear(&self) -> io::Result<u64>;

    /// The backend's self-healing health counters, when it has any. Local
    /// backends have no failure machinery and report `None`; the remote
    /// tier reports its circuit-breaker state (see
    /// [`RemoteHealth`](crate::store::breaker::RemoteHealth)).
    fn health(&self) -> Option<crate::store::breaker::RemoteHealth> {
        None
    }
}

/// The default backend: a content-addressed directory tree.
///
/// ```text
/// <root>/v2/<hh>/<hhhhhhhhhhhhhhhh>.mlz   (current: minilz-compressed)
/// <root>/v1/<hh>/<hhhhhhhhhhhhhhhh>.json  (read-compat: plain JSON)
/// ```
///
/// Writes always produce `v2` containers and remove any `v1` file for the
/// same address, so a tree migrates lazily as entries are rewritten;
/// `bbs cache gc --recompress` migrates a whole tree in one pass. Writes
/// are atomic (temp file + rename), so concurrent processes sharing one
/// root can race freely.
#[derive(Debug)]
pub struct LocalDirBackend {
    root: PathBuf,
}

/// Process-global distinguisher for temporary file names: two backends
/// opened on the same directory in one process must never write the same
/// temp file.
static WRITE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl LocalDirBackend {
    /// Opens (creating if needed) a backend rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the directory cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(root.join(format!("v{STORE_SCHEMA_VERSION}")))?;
        Ok(Self { root })
    }

    /// Opens a backend rooted at an *existing* directory, creating nothing
    /// — the constructor for read-and-manage commands (`bbs cache`), which
    /// must not materialise a store tree at a mistyped path.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::NotFound`] when `dir` is not a directory.
    pub fn open_existing(dir: impl AsRef<Path>) -> io::Result<Self> {
        let root = dir.as_ref();
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} is not a directory", root.display()),
            ));
        }
        Ok(Self {
            root: root.to_path_buf(),
        })
    }

    /// The directory the backend was opened at.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where a `v1` (plain JSON) container for `address` would live.
    pub fn v1_path(&self, address: &str) -> PathBuf {
        self.root
            .join("v1")
            .join(&address[..2])
            .join(format!("{address}.json"))
    }

    /// Where the current `v2` (compressed) container for `address` lives.
    pub fn v2_path(&self, address: &str) -> PathBuf {
        self.root
            .join(format!("v{STORE_SCHEMA_VERSION}"))
            .join(&address[..2])
            .join(format!("{address}.mlz"))
    }

    /// Writes `bytes` to a temporary file next to `path` and renames it
    /// into place, so readers never observe a partial entry.
    fn write_atomically(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let directory = path.parent().expect("entry paths have a shard directory");
        fs::create_dir_all(directory)?;
        let unique = WRITE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let temp = directory.join(format!(".tmp-{}-{unique}", std::process::id()));
        fs::write(&temp, bytes)?;
        match fs::rename(&temp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                // A lost rename race means another process persisted the
                // same entry; drop our copy.
                let _ = fs::remove_file(&temp);
                Err(e)
            }
        }
    }

    /// Scans one version directory, appending its entries to `entries`.
    fn scan_version(
        &self,
        version: u64,
        extension: &str,
        scan_time: SystemTime,
        entries: &mut Vec<StoreEntry>,
    ) -> io::Result<()> {
        let directory = self.root.join(format!("v{version}"));
        // A missing version directory is an empty tier (e.g. cleared by a
        // concurrent process, or a pre-migration store); reads stay pure
        // and never create it.
        let shards = match fs::read_dir(&directory) {
            Ok(shards) => shards,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for shard in shards {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            let files = match fs::read_dir(&shard) {
                Ok(files) => files,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            for file in files {
                let file = file?;
                let path = file.path();
                if path.extension().and_then(|e| e.to_str()) != Some(extension) {
                    continue; // temp files and strays
                }
                let metadata = match file.metadata() {
                    Ok(metadata) => metadata,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(e),
                };
                let (modified, mtime_readable) = match metadata.modified() {
                    Ok(modified) => (modified, true),
                    Err(_) => (scan_time, false),
                };
                entries.push(StoreEntry {
                    path,
                    version,
                    modified,
                    mtime_readable,
                    bytes: metadata.len(),
                });
            }
        }
        Ok(())
    }
}

/// Decodes one compressed `v2` container into its body text.
fn decode_v2(bytes: &[u8]) -> io::Result<String> {
    let raw = minilz::decompress(bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    String::from_utf8(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

impl StoreBackend for LocalDirBackend {
    fn describe(&self) -> String {
        format!("local dir {}", self.root.display())
    }

    fn get(&self, address: &str) -> io::Result<Option<RawEntry>> {
        match fs::read(self.v2_path(address)) {
            Ok(bytes) => {
                return Ok(Some(RawEntry {
                    version: STORE_SCHEMA_VERSION,
                    body: decode_v2(&bytes)?,
                }))
            }
            // A missing current-version container falls through to v1.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        match fs::read_to_string(self.v1_path(address)) {
            Ok(body) => Ok(Some(RawEntry { version: 1, body })),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn put(&self, address: &str, body: &str) -> io::Result<u64> {
        let frame = minilz::compress(body.as_bytes());
        self.write_atomically(&self.v2_path(address), &frame)?;
        // Supersede any v1-era container for the same address so scans and
        // retention see exactly one entry per key.
        let _ = fs::remove_file(self.v1_path(address));
        Ok(frame.len() as u64)
    }

    fn list(&self) -> io::Result<Vec<StoreEntry>> {
        let scan_time = SystemTime::now();
        let mut entries = Vec::new();
        self.scan_version(1, "json", scan_time, &mut entries)?;
        self.scan_version(STORE_SCHEMA_VERSION, "mlz", scan_time, &mut entries)?;
        entries.sort_by(|a, b| {
            a.modified
                .cmp(&b.modified)
                .then_with(|| a.path.cmp(&b.path))
        });
        Ok(entries)
    }

    fn read_body(&self, entry: &StoreEntry) -> io::Result<RawEntry> {
        let body = if entry.version == 1 {
            fs::read_to_string(&entry.path)?
        } else {
            decode_v2(&fs::read(&entry.path)?)?
        };
        Ok(RawEntry {
            version: entry.version,
            body,
        })
    }

    fn remove(&self, entry: &StoreEntry) -> io::Result<bool> {
        match fs::remove_file(&entry.path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn clear(&self) -> io::Result<u64> {
        let mut removed = 0;
        let versions = match fs::read_dir(&self.root) {
            Ok(versions) => Some(versions),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        for version in versions.into_iter().flatten() {
            let version = version?.path();
            if version.is_dir() {
                removed += count_entry_files(&version)?;
                // A concurrent clear may have won the race; only a tree
                // that still exists unremoved is an error.
                if let Err(e) = fs::remove_dir_all(&version) {
                    if version.exists() {
                        return Err(e);
                    }
                }
            }
        }
        fs::create_dir_all(self.root.join(format!("v{STORE_SCHEMA_VERSION}")))?;
        Ok(removed)
    }
}

fn count_entry_files(directory: &Path) -> io::Result<u64> {
    let mut count = 0;
    let files = match fs::read_dir(directory) {
        Ok(files) => files,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    for entry in files {
        let path = entry?.path();
        if path.is_dir() {
            count += count_entry_files(&path)?;
        } else if matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("json") | Some("mlz")
        ) {
            count += 1;
        }
    }
    Ok(count)
}
