//! [`RemoteBackend`]: a store tier that speaks the serve protocol to a
//! peer `bbs serve` daemon.
//!
//! The backend layers *under* the local directory tier as a read-through /
//! write-behind cache of last resort:
//!
//! * **read-through** — a local miss asks the peer with a `store_get`
//!   request; on a hit the body is validated exactly like a local entry
//!   (full-key comparison included) and written back into the local tier,
//!   so the next run hits locally.
//! * **write-behind** — fresh solves return as soon as the local write
//!   lands; a background writer thread ships `store_put` requests to the
//!   peer afterwards, each acknowledged, over its own connection. Dropping
//!   the backend (end of run) joins the writer, so a finished process has
//!   durably handed everything to the peer.
//!
//! Failure policy: the remote tier is strictly best-effort, and failures
//! heal. Transport errors feed a [`CircuitBreaker`]: enough consecutive
//! failures open it, after which every operation — reads and write-behind
//! puts alike — fails fast without touching the network. Once the current
//! backoff elapses, the next operation doubles as a `store_stats` health
//! probe; a successful probe closes the breaker and traffic (including the
//! write-behind queue) resumes, all without restarting the process. A
//! broken or absent peer can cost fresh solves, never wrong answers — and
//! because remote lookups happen only on the in-memory tier's claimer
//! path, the report byte-identity invariants hold with or without the
//! tier.
//!
//! One failure is still permanent: a peer that *answers* but refuses store
//! requests (e.g. it serves without a store attached) will refuse every
//! key, so the first semantic refusal latches the backend off — probing a
//! healthy-but-unwilling peer cannot help.
//!
//! Management scans ([`list`](StoreBackend::list), [`clear`](StoreBackend::clear),
//! …) are [`io::ErrorKind::Unsupported`]: retention runs where the data
//! lives, on the peer.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use super::backend::{RawEntry, StoreBackend, StoreEntry, STORE_SCHEMA_VERSION};
use super::breaker::{BreakerConfig, CircuitBreaker, Gate, RemoteHealth};
use crate::serve::protocol::{read_reply, send_request, Reply, Request, StoreReport};

/// Queued-but-unsent `store_put` bodies the writer thread will buffer
/// before [`StoreBackend::put`] starts dropping (best-effort, counted).
const WRITE_BEHIND_CAPACITY: usize = 1024;

/// A solve-store tier backed by a peer `bbs serve` daemon.
///
/// See the [module docs](self) for the tiering and failure story. Attach
/// one with [`SolveStore::with_remote`](crate::SolveStore::with_remote);
/// build one with [`RemoteBackend::connect`].
#[derive(Debug)]
pub struct RemoteBackend {
    addr: String,
    /// The synchronous request connection (`store_get`, `store_stats`).
    /// `None` between a transport error and the reconnect attempt.
    conn: Mutex<Option<TcpStream>>,
    /// Raised on the first *semantic* refusal (the peer answered but
    /// rejected the store request); permanent — see the [module
    /// docs](self).
    refused: AtomicBool,
    /// Transport health: open = fail fast, probe on backoff, self-heal.
    breaker: Arc<CircuitBreaker>,
    /// `store_put` bodies dropped: write-behind queue full, or breaker
    /// open / transport failure when their turn came.
    dropped_puts: Arc<AtomicU64>,
    writer: Mutex<Option<WriteBehind>>,
}

#[derive(Debug)]
struct WriteBehind {
    sender: mpsc::SyncSender<(String, String)>,
    handle: JoinHandle<()>,
}

impl RemoteBackend {
    /// Connects to a peer daemon at `addr` (e.g. `127.0.0.1:4780`) with the
    /// default [`BreakerConfig`].
    ///
    /// The synchronous connection is established eagerly so a mistyped
    /// address fails the command instead of silently degrading every
    /// lookup; the write-behind thread opens its own connection lazily on
    /// the first queued put.
    ///
    /// # Errors
    ///
    /// Returns the underlying connection error.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Self::connect_with(addr, BreakerConfig::default())
    }

    /// [`connect`](Self::connect) with explicit circuit-breaker tuning.
    ///
    /// # Errors
    ///
    /// Returns the underlying connection error.
    pub fn connect_with(addr: &str, breaker: BreakerConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            addr: addr.to_string(),
            conn: Mutex::new(Some(stream)),
            refused: AtomicBool::new(false),
            breaker: Arc::new(CircuitBreaker::new(breaker)),
            dropped_puts: Arc::new(AtomicU64::new(0)),
            writer: Mutex::new(None),
        })
    }

    /// The peer address this backend talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The transport circuit breaker, for inspection.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// How many write-behind puts were dropped because the queue was full
    /// or the breaker was open. Diagnostic only — drops cost the *peer*
    /// warmth, never local correctness.
    pub fn dropped_puts(&self) -> u64 {
        self.dropped_puts.load(Ordering::Relaxed)
    }

    /// Asks the peer for its store view via a `store_stats` request.
    ///
    /// # Errors
    ///
    /// Transport failures, or an `"error"` reply (e.g. the peer serves
    /// without a store).
    pub fn peer_stats(&self) -> io::Result<StoreReport> {
        let reply = self.request(&Request::store_stats())?;
        match reply.kind.as_str() {
            "store_stats" => reply.store.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "store_stats reply carried no store section",
                )
            }),
            _ => Err(reply_error(&reply)),
        }
    }

    /// Flushes the write-behind queue: blocks until every queued put has
    /// been acknowledged by the peer (or dropped). Dropping the backend
    /// flushes implicitly.
    pub fn flush(&self) {
        let taken = self
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(writer) = taken {
            drop(writer.sender);
            let _ = writer.handle.join();
        }
    }

    /// One request/reply round trip on the synchronous connection, behind
    /// the breaker: fail fast while open, probe with `store_stats` when
    /// the backoff has elapsed, and record the transport outcome either
    /// way.
    fn request(&self, request: &Request) -> io::Result<Reply> {
        if self.refused.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("remote store {} refused store requests", self.addr),
            ));
        }
        let mut guard = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
        match self.breaker.gate() {
            Gate::Open => {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    format!("remote store {}: circuit breaker open", self.addr),
                ));
            }
            Gate::Probe => {
                self.breaker.record_probe();
                match attempt_round_trip(&self.addr, &mut guard, &Request::store_stats()) {
                    Ok(_) => self.breaker.record_success(),
                    Err(e) => {
                        self.breaker.record_failure();
                        return Err(e);
                    }
                }
            }
            Gate::Closed => {}
        }
        match attempt_round_trip(&self.addr, &mut guard, request) {
            Ok(reply) => {
                self.breaker.record_success();
                Ok(reply)
            }
            Err(e) => {
                self.breaker.record_failure();
                Err(e)
            }
        }
    }

    /// The writer-thread sender, spawning the thread on first use.
    fn writer_sender(&self) -> io::Result<mpsc::SyncSender<(String, String)>> {
        let mut guard = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.is_none() {
            let (sender, receiver) = mpsc::sync_channel(WRITE_BEHIND_CAPACITY);
            let addr = self.addr.clone();
            let breaker = Arc::clone(&self.breaker);
            let dropped = Arc::clone(&self.dropped_puts);
            let handle = std::thread::Builder::new()
                .name("bbs-store-write-behind".to_string())
                .spawn(move || write_behind_loop(&addr, receiver, &breaker, &dropped))?;
            *guard = Some(WriteBehind { sender, handle });
        }
        Ok(guard.as_ref().expect("writer just ensured").sender.clone())
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The write-behind thread: its own connection, one acknowledged
/// `store_put` per queued body, behind the shared breaker. A put whose
/// turn comes while the breaker is open is dropped (counted); once a
/// probe closes the breaker the remaining queue ships normally — the
/// re-attach half of self-healing.
fn write_behind_loop(
    addr: &str,
    receiver: mpsc::Receiver<(String, String)>,
    breaker: &CircuitBreaker,
    dropped: &AtomicU64,
) {
    let mut conn: Option<TcpStream> = None;
    for (_address, body) in receiver {
        match breaker.gate() {
            Gate::Open => {
                dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            Gate::Probe => {
                breaker.record_probe();
                match attempt_round_trip(addr, &mut conn, &Request::store_stats()) {
                    Ok(_) => breaker.record_success(),
                    Err(_) => {
                        breaker.record_failure();
                        dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            Gate::Closed => {}
        }
        let request = Request::store_put(body);
        match attempt_round_trip(addr, &mut conn, &request) {
            // Any decoded reply is an acknowledgement; an `"error"` reply
            // means the peer refused this body (e.g. it failed validation)
            // — retrying cannot help, move on.
            Ok(_) => breaker.record_success(),
            Err(_) => {
                breaker.record_failure();
                dropped.fetch_add(1, Ordering::Relaxed);
                conn = None;
            }
        }
    }
}

/// One round trip over a reusable connection slot, with a single reconnect
/// attempt on transport failure. Leaves the slot empty when both attempts
/// fail.
fn attempt_round_trip(
    addr: &str,
    conn: &mut Option<TcpStream>,
    request: &Request,
) -> io::Result<Reply> {
    for attempt in 0..2 {
        if conn.is_none() {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    *conn = Some(stream);
                }
                Err(e) => return Err(e),
            }
        }
        let stream = conn.as_mut().expect("connection just ensured");
        match round_trip(stream, request) {
            Ok(reply) => return Ok(reply),
            Err(e) => {
                *conn = None;
                if attempt == 1 {
                    return Err(e);
                }
            }
        }
    }
    unreachable!("the second attempt returned")
}

/// Sends one request and reads one reply; a clean EOF is an error here —
/// the peer must answer every store request.
fn round_trip(stream: &mut TcpStream, request: &Request) -> io::Result<Reply> {
    send_request(stream, request)?;
    read_reply(stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed the connection before replying",
        )
    })
}

fn reply_error(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        match &reply.message {
            Some(message) => format!("peer refused store request: {message}"),
            None => format!("unexpected {:?} reply to a store request", reply.kind),
        },
    )
}

fn unsupported(operation: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        format!("remote store tier does not support {operation}; manage the store on the peer"),
    )
}

impl StoreBackend for RemoteBackend {
    fn describe(&self) -> String {
        format!("remote peer {}", self.addr)
    }

    fn get(&self, address: &str) -> io::Result<Option<RawEntry>> {
        let reply = self.request(&Request::store_get(address))?;
        match reply.kind.as_str() {
            "store_entry" => Ok(reply.entry.map(|body| RawEntry {
                version: reply.entry_version.unwrap_or(STORE_SCHEMA_VERSION),
                body,
            })),
            _ => {
                // A peer that answers but refuses (no store attached, bad
                // address) will refuse every key; stop asking — permanently,
                // the breaker cannot heal unwillingness.
                self.refused.store(true, Ordering::Release);
                Err(reply_error(&reply))
            }
        }
    }

    fn put(&self, address: &str, body: &str) -> io::Result<u64> {
        if self.refused.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("remote store {} refused store requests", self.addr),
            ));
        }
        let sender = self.writer_sender()?;
        match sender.try_send((address.to_string(), body.to_string())) {
            Ok(()) => Ok(body.len() as u64),
            Err(mpsc::TrySendError::Full(_)) | Err(mpsc::TrySendError::Disconnected(_)) => {
                self.dropped_puts.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "write-behind queue full; put dropped",
                ))
            }
        }
    }

    fn list(&self) -> io::Result<Vec<StoreEntry>> {
        Err(unsupported("list"))
    }

    fn read_body(&self, _entry: &StoreEntry) -> io::Result<RawEntry> {
        Err(unsupported("read_body"))
    }

    fn remove(&self, _entry: &StoreEntry) -> io::Result<bool> {
        Err(unsupported("remove"))
    }

    fn clear(&self) -> io::Result<u64> {
        Err(unsupported("clear"))
    }

    fn health(&self) -> Option<RemoteHealth> {
        Some(RemoteHealth {
            breaker_open: self.breaker.is_open(),
            breaker_opens: self.breaker.opens(),
            breaker_closes: self.breaker.closes(),
            breaker_probes: self.breaker.probes(),
            dropped_puts: self.dropped_puts.load(Ordering::Relaxed),
        })
    }
}
