//! The persistent, content-addressed solve store — the disk tier below the
//! in-memory [`SolveCache`](crate::SolveCache).
//!
//! Every `bbs` invocation starts with an empty in-memory cache, so without
//! persistence a re-run of a suite pays full solve cost for every distinct
//! problem instance. The store closes that gap: each completed solve is
//! written out keyed by the same canonical identity the in-memory cache
//! uses — the (configuration, options, flow) triple of the
//! [`CanonicalKey`] — and later runs (of any process) read it back instead
//! of solving again.
//!
//! # Backends and tiers
//!
//! *Where* bodies live is behind the [`StoreBackend`] trait (see
//! [`backend`]): the store owns a **primary** backend — by default a
//! [`LocalDirBackend`] directory tree — plus an optional **remote** tier
//! ([`RemoteBackend`], see [`remote`]) speaking the serve protocol to a
//! peer `bbs serve` daemon. Lookups read the primary first, then fall
//! through to the remote; a remote hit is validated like any local entry
//! and written back into the primary (read-through). Fresh results are
//! written to the primary synchronously and shipped to the remote
//! asynchronously (write-behind). The store itself keeps all semantics —
//! addressing, collision guards, validation, retention — so every backend
//! shares one correctness story.
//!
//! # Layout (the local backend)
//!
//! ```text
//! <root>/v2/<hh>/<hhhhhhhhhhhhhhhh>.mlz   current: minilz-compressed JSON
//! <root>/v1/<hh>/<hhhhhhhhhhhhhhhh>.json  read-compat: plain JSON
//! ```
//!
//! where `hhhhhhhhhhhhhhhh` is the 16-hex-digit FNV-1a hash of the full
//! cache key ([`entry_address`]) and `<hh>` its first two digits (a
//! 256-way fan-out so no single directory grows huge). `v2` is
//! [`STORE_SCHEMA_VERSION`]; `v1` trees written by older builds stay
//! readable ([`OLDEST_READABLE_SCHEMA`]) and migrate either lazily on
//! rewrite or in one pass via `bbs cache gc --recompress`. Each entry body
//! is a single JSON object that repeats the *full* canonical key, so a
//! 64-bit hash collision is detected by string comparison and treated as a
//! miss, never as a wrong answer.
//!
//! # Crash- and concurrency-safety
//!
//! Entries are written to a temporary file in the destination directory
//! and atomically renamed into place, so concurrent `bbs --jobs N` runs
//! (or several independent processes sharing one cache directory) can race
//! freely: the worst case is solving the same instance twice and one
//! writer winning the rename. Partial, truncated or otherwise corrupt
//! entries are counted and ignored — the engine falls back to a fresh
//! solve and rewrites the entry.
//!
//! # What is (not) persisted
//!
//! Feasible mappings are stored as the solver's *raw* values plus
//! objective and iteration count; the rounded mapping is reconstructed
//! with [`Mapping::from_raw`], which is deterministic, so a disk hit is
//! bit-identical to the original solve. Genuine infeasibility (no mapping
//! exists — a mathematical property of the problem) is persisted too.
//! Solver breakdowns, model errors and verification failures are *not*
//! persisted: they describe the engine, not the problem, and must be
//! re-attempted by later runs.
//!
//! # Example
//!
//! ```
//! use bbs_engine::{run_suite_with_cache, RunSettings, SolveCache, SolveStore};
//! use bbs_engine::suites::smoke_suite;
//!
//! let dir = std::env::temp_dir().join(format!("bbs-store-doc-{}", std::process::id()));
//! let settings = RunSettings::default();
//!
//! // Cold run: every distinct instance is solved and stored.
//! let cache = SolveCache::with_store(SolveStore::open(&dir).unwrap());
//! run_suite_with_cache(&smoke_suite(), &settings, &cache).unwrap();
//! let cold = cache.store().unwrap().stats();
//! assert_eq!(cold.disk_hits, 0);
//! assert!(cold.stored > 0);
//!
//! // Warm run in a fresh cache (a new process): all disk hits, no solves.
//! let cache = SolveCache::with_store(SolveStore::open(&dir).unwrap());
//! run_suite_with_cache(&smoke_suite(), &settings, &cache).unwrap();
//! let warm = cache.store().unwrap().stats();
//! assert_eq!(warm.fresh_solves, 0);
//! assert_eq!(warm.disk_hits, cold.stored);
//!
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod backend;
pub mod breaker;
pub mod remote;

pub use backend::{
    LocalDirBackend, RawEntry, StoreBackend, StoreEntry, OLDEST_READABLE_SCHEMA,
    STORE_SCHEMA_VERSION,
};
pub use breaker::{BreakerConfig, CircuitBreaker, RemoteHealth};
pub use remote::RemoteBackend;

use crate::cache::CanonicalKey;
use bbs_taskgraph::{fnv1a, BufferRef, Configuration, MemoryId, ProcessorId, TaskRef};
use budget_buffer::{Mapping, MappingError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, SystemTime};

/// Run counters of a [`SolveStore`], all deterministic across `--jobs`
/// because the in-memory tier funnels exactly one lookup per distinct key
/// to the persistent tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups answered by the primary (local) tier.
    pub disk_hits: u64,
    /// Lookups the primary missed that the remote tier answered.
    pub remote_hits: u64,
    /// Lookups that found no usable entry in any tier and had to solve.
    pub fresh_solves: u64,
    /// Entries newly written to the primary tier: persistable fresh solves
    /// plus read-through fills from the remote tier.
    pub stored: u64,
    /// Entries ignored because they were corrupt, carried a foreign schema
    /// version, or collided with a different key.
    pub rejected: u64,
    /// Whether a remote tier is attached. Configuration, not a counter —
    /// it lets renderers show the remote column only when one exists.
    pub remote_enabled: bool,
    /// Times the remote tier's circuit breaker opened (consecutive
    /// transport failures reached the threshold). Zero without a remote
    /// tier.
    pub breaker_opens: u64,
    /// Times a health probe succeeded against an open breaker and closed
    /// it again.
    pub breaker_closes: u64,
    /// Health probes attempted while the breaker was open (successful or
    /// not).
    pub breaker_probes: u64,
    /// Whether the breaker is open *right now* — remote traffic is being
    /// fail-fasted while background probes look for recovery.
    pub breaker_open: bool,
    /// Write-behind entries dropped because the breaker was open when
    /// their turn came. They cost the peer warmth only; the local tier
    /// already holds them.
    pub dropped_puts: u64,
}

/// What `bbs cache stats` reports: a full scan of the primary tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSummary {
    /// Readable entries of a supported schema version.
    pub entries: u64,
    /// Entries holding a feasible mapping.
    pub feasible: u64,
    /// Entries holding a persisted infeasibility.
    pub infeasible: u64,
    /// Files that failed to read or parse, or carry a foreign schema
    /// version.
    pub corrupt: u64,
    /// Valid entries still in the `v1` (plain JSON) container format.
    pub v1_entries: u64,
    /// Valid entries in the current `v2` (compressed) container format.
    pub v2_entries: u64,
    /// Physical size of all entry files, in bytes (compressed sizes for
    /// `v2`).
    pub total_bytes: u64,
    /// Uncompressed size of all readable entry bodies, in bytes. The
    /// `logical/physical` ratio is the compression win; for a pure-`v1`
    /// tree the two are equal.
    pub logical_bytes: u64,
}

/// Retention policy for [`SolveStore::gc`]. Unset fields do not constrain.
///
/// Constraints apply in order: age eviction first, then the entry-count
/// cap, then the byte budget — each oldest-first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcPolicy {
    /// Keep at most this many entries (the most recently written survive).
    pub max_entries: Option<u64>,
    /// Keep at most this many *physical* bytes of entry files.
    pub max_bytes: Option<u64>,
    /// Remove entries last written longer than this ago.
    pub max_age: Option<Duration>,
}

/// What a [`SolveStore::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entry files removed.
    pub removed: u64,
    /// Entry files kept.
    pub kept: u64,
    /// Physical bytes of the kept entry files.
    pub kept_bytes: u64,
    /// Entries whose modification time the filesystem could not report.
    /// They are treated as written *now* — never age-evicted — instead of
    /// as infinitely old, which on such filesystems would make a
    /// `--max-age` pass wipe the entire store.
    pub unreadable_mtimes: u64,
}

/// What a [`SolveStore::recompress`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecompressOutcome {
    /// `v1` entries rewritten as `v2` containers.
    pub migrated: u64,
    /// Entries already in the current container format, left untouched.
    pub already_current: u64,
    /// `v1` files skipped because they failed to read or validate; they
    /// stay in place for `bbs cache stats` to report as corrupt.
    pub corrupt: u64,
    /// Valid `v1` entries whose rewrite failed (I/O); left in place.
    pub failed: u64,
}

/// One entry body: the full canonical key (collision guard) plus exactly
/// one of a stored mapping or a stored infeasibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredEntry {
    schema: u64,
    fingerprint: u64,
    configuration: String,
    options: String,
    flow: String,
    feasible: Option<StoredMapping>,
    infeasible: Option<StoredInfeasibility>,
}

/// The raw solver values a [`Mapping`] is deterministically rebuilt from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredMapping {
    raw_budgets: Vec<(TaskRef, f64)>,
    raw_space: Vec<(BufferRef, f64)>,
    objective: f64,
    solver_iterations: u64,
}

/// A persisted genuine-infeasibility outcome. `kind` selects the
/// [`MappingError`] variant; the variant's fields ride along as options
/// (the vendored serde derives structs only, so enums are flattened here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredInfeasibility {
    kind: String,
    detail: Option<String>,
    buffer: Option<BufferRef>,
    cap: Option<u64>,
    initial_tokens: Option<u64>,
    processor: Option<ProcessorId>,
    required_cycles: Option<f64>,
    available_cycles: Option<f64>,
    memory: Option<MemoryId>,
    required_storage: Option<u64>,
    available_storage: Option<u64>,
}

/// Entry-count and byte estimates maintained by the write-path cap
/// enforcement; `None` in the surrounding `Mutex<Option<…>>` means
/// "unknown, rescan before the next decision".
#[derive(Debug, Clone, Copy)]
struct TrackedSize {
    entries: u64,
    bytes: u64,
}

/// A persistent, content-addressed store of solve results.
///
/// Open one with [`SolveStore::open`] (a local directory tree), optionally
/// layer a remote tier under it with [`with_remote`](Self::with_remote),
/// and attach it to a cache with
/// [`SolveCache::with_store`](crate::SolveCache::with_store); the cache
/// then reads through to the store on every in-memory miss and writes
/// every fresh, persistable result back. See the [module docs](self) for
/// the format, the tiering and the safety story.
#[derive(Debug)]
pub struct SolveStore {
    root: PathBuf,
    primary: Box<dyn StoreBackend>,
    remote: Option<Box<dyn StoreBackend>>,
    disk_hits: AtomicU64,
    remote_hits: AtomicU64,
    fresh_solves: AtomicU64,
    stored: AtomicU64,
    rejected: AtomicU64,
    /// Automatic size caps enforced on the write path (see
    /// [`SolveStore::with_max_entries`] and
    /// [`SolveStore::with_max_bytes`]); `None` leaves growth to manual
    /// `bbs cache gc`.
    max_entries: Option<u64>,
    max_bytes: Option<u64>,
    /// Size estimate maintained by the cap enforcement. Deliberately
    /// approximate — overwrites and concurrent writers drift it upward,
    /// which only makes enforcement run (and resynchronise from a real
    /// scan) earlier.
    tracked: Mutex<Option<TrackedSize>>,
}

impl SolveStore {
    /// Opens (creating if needed) a store rooted at `dir`, backed by a
    /// [`LocalDirBackend`].
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the directory cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let root = dir.as_ref().to_path_buf();
        let backend = LocalDirBackend::open(&root)?;
        Ok(Self::with_backend(root, Box::new(backend)))
    }

    /// Opens a store rooted at an *existing* directory, creating nothing —
    /// the constructor for read-and-manage commands (`bbs cache`), which
    /// must not materialise a store tree at a mistyped path.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::NotFound`] when `dir` is not a directory.
    pub fn open_existing(dir: impl AsRef<Path>) -> io::Result<Self> {
        let root = dir.as_ref().to_path_buf();
        let backend = LocalDirBackend::open_existing(&root)?;
        Ok(Self::with_backend(root, Box::new(backend)))
    }

    /// Builds a store over an arbitrary primary [`StoreBackend`]. `label`
    /// is what [`root`](Self::root) reports — for the default constructors
    /// it is the real directory; for custom backends it is a display
    /// label.
    pub fn with_backend(label: impl Into<PathBuf>, primary: Box<dyn StoreBackend>) -> Self {
        Self {
            root: label.into(),
            primary,
            remote: None,
            disk_hits: AtomicU64::new(0),
            remote_hits: AtomicU64::new(0),
            fresh_solves: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            max_entries: None,
            max_bytes: None,
            tracked: Mutex::new(None),
        }
    }

    /// Layers a remote tier under the primary backend: lookups fall
    /// through to it on a primary miss (read-through — a remote hit is
    /// validated and written back into the primary), and fresh results are
    /// shipped to it best-effort after the primary write (write-behind).
    #[must_use]
    pub fn with_remote(mut self, remote: Box<dyn StoreBackend>) -> Self {
        self.remote = Some(remote);
        self
    }

    /// Enforces an automatic entry-count cap on the write path: whenever a
    /// write pushes the store beyond `max_entries`, the same deterministic
    /// retention pass `bbs cache gc --max-entries` runs evicts oldest-first
    /// (mtime order, ties broken by path) back down to the cap. A cap of 0
    /// is accepted and keeps the store empty.
    ///
    /// The enforcement keeps a size estimate so the common case (under the
    /// cap) costs one counter bump per write; the estimate is
    /// (re)synchronised from a directory scan when unknown or after every
    /// eviction pass, so concurrent writers and overwrites can only make
    /// enforcement run early, never miss the bound for long.
    #[must_use]
    pub fn with_max_entries(mut self, max_entries: u64) -> Self {
        self.max_entries = Some(max_entries);
        self
    }

    /// Enforces an automatic *byte* budget on the write path, the
    /// physical-size analogue of [`with_max_entries`](Self::with_max_entries)
    /// (`bbs cache gc --max-bytes` is the manual form). Compressed `v2`
    /// entries count at their physical (compressed) size.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// The automatic entry-count cap, when one was set.
    pub fn max_entries(&self) -> Option<u64> {
        self.max_entries
    }

    /// The automatic byte budget, when one was set.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The directory the store was opened at (a display label for custom
    /// backends).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether a remote tier is attached.
    pub fn has_remote(&self) -> bool {
        self.remote.is_some()
    }

    /// This run's counters, including the remote tier's circuit-breaker
    /// health when one is attached.
    pub fn stats(&self) -> StoreStats {
        let health = self
            .remote
            .as_ref()
            .and_then(|remote| remote.health())
            .unwrap_or_default();
        StoreStats {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            fresh_solves: self.fresh_solves.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            remote_enabled: self.remote.is_some(),
            breaker_opens: health.breaker_opens,
            breaker_closes: health.breaker_closes,
            breaker_probes: health.breaker_probes,
            breaker_open: health.breaker_open,
            dropped_puts: health.dropped_puts,
        }
    }

    /// Looks `key` up in the persistent tiers; `configuration` must be the
    /// configuration the key was built from (it rebuilds the mapping
    /// without re-parsing the key's canonical JSON). Reads the primary
    /// tier first, then the remote; a remote hit is written back into the
    /// primary. Returns `None` — after bumping the fresh-solve counter —
    /// when no tier holds a usable entry.
    pub fn load(
        &self,
        key: &CanonicalKey,
        configuration: &Configuration,
    ) -> Option<Result<Mapping, MappingError>> {
        debug_assert_eq!(
            key.configuration,
            configuration.canonical_json(),
            "load() must receive the configuration its key was built from"
        );
        self.try_load(key, configuration)
    }

    /// [`load`](Self::load) without the matching-configuration debug
    /// assertion — the tier walk itself.
    fn try_load(
        &self,
        key: &CanonicalKey,
        configuration: &Configuration,
    ) -> Option<Result<Mapping, MappingError>> {
        let address = entry_address(key);
        if let Some((result, _)) =
            self.lookup_tier(self.primary.as_ref(), &address, key, configuration, true)
        {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Some(result);
        }
        if let Some(remote) = &self.remote {
            if let Some((result, body)) =
                self.lookup_tier(remote.as_ref(), &address, key, configuration, false)
            {
                self.remote_hits.fetch_add(1, Ordering::Relaxed);
                // Read-through: populate the primary tier so the next run
                // (and the rest of this one) hits locally.
                self.persist_primary(&address, &body);
                return Some(result);
            }
        }
        self.fresh_solves.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// One tier's lookup: fetch, parse, validate (schema, full-key
    /// collision guard, outcome shape), decode. Validation failures bump
    /// the `rejected` counter on any tier; plain *transport/read* errors
    /// bump it only when `count_read_errors` is set (local tier — a
    /// broken remote is expected degradation, not a corrupt entry).
    fn lookup_tier(
        &self,
        tier: &dyn StoreBackend,
        address: &str,
        key: &CanonicalKey,
        configuration: &Configuration,
        count_read_errors: bool,
    ) -> Option<(Result<Mapping, MappingError>, String)> {
        let raw = match tier.get(address) {
            Ok(Some(raw)) => raw,
            // A missing entry is the normal cold-cache case, not a rejection.
            Ok(None) => return None,
            Err(_) => {
                if count_read_errors {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            }
        };
        let Ok(entry) = serde_json::from_str::<StoredEntry>(&raw.body) else {
            return self.reject();
        };
        if !is_readable_schema(entry.schema) {
            return self.reject();
        }
        // Full-key comparison: a 64-bit hash collision surfaces here and
        // falls back to a fresh solve instead of returning a wrong answer.
        if entry.fingerprint != key.fingerprint
            || entry.configuration != key.configuration
            || entry.options != key.options
            || entry.flow != key.flow
        {
            return self.reject();
        }
        match (entry.feasible, entry.infeasible) {
            (Some(mapping), None) => match decode_mapping(&mapping, configuration) {
                Some(mapping) => Some((Ok(mapping), raw.body)),
                None => self.reject(),
            },
            (None, Some(error)) => match decode_infeasibility(&error) {
                Some(error) => Some((Err(error), raw.body)),
                None => self.reject(),
            },
            _ => self.reject(),
        }
    }

    fn reject(&self) -> Option<(Result<Mapping, MappingError>, String)> {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Persists a solve result, best-effort: I/O failures and
    /// non-persistable errors (solver breakdowns, model errors,
    /// verification failures — see the [module docs](self)) are skipped
    /// silently; the next run simply solves again. The primary write is
    /// synchronous; the remote tier (when attached) receives the body
    /// write-behind.
    pub fn save(&self, key: &CanonicalKey, result: &Result<Mapping, MappingError>) {
        let Some(body) = encode_entry(key, result) else {
            return;
        };
        let address = entry_address(key);
        if self.persist_primary(&address, &body) {
            if let Some(remote) = &self.remote {
                // Write-behind, best-effort: a full queue or broken peer
                // costs the peer warmth, never local correctness.
                let _ = remote.put(&address, &body);
            }
        }
    }

    /// Writes one body into the primary tier, counting it and enforcing
    /// the automatic caps. Returns whether the write landed.
    fn persist_primary(&self, address: &str, body: &str) -> bool {
        match self.primary.put(address, body) {
            Ok(bytes) => {
                self.stored.fetch_add(1, Ordering::Relaxed);
                self.enforce_caps(bytes);
                true
            }
            Err(_) => false,
        }
    }

    /// The write-path half of the automatic caps (see
    /// [`SolveStore::with_max_entries`]/[`with_max_bytes`](Self::with_max_bytes)):
    /// bump or rebuild the size estimate and, when it exceeds a cap, run
    /// the same pure [`plan_gc`]-backed eviction `bbs cache gc` uses.
    fn enforce_caps(&self, written_bytes: u64) {
        if self.max_entries.is_none() && self.max_bytes.is_none() {
            return;
        }
        let mut tracked = self.tracked.lock().unwrap_or_else(PoisonError::into_inner);
        let estimate = match tracked.take() {
            Some(size) => TrackedSize {
                entries: size.entries.saturating_add(1),
                bytes: size.bytes.saturating_add(written_bytes),
            },
            // Unknown (first capped write of this process, or a previous
            // enforcement failed): resynchronise from a real scan. The
            // entry just written is already on disk, so the scan includes
            // it.
            None => match self.primary.list() {
                Ok(scan) => TrackedSize {
                    entries: scan.len() as u64,
                    bytes: scan.iter().map(|entry| entry.bytes).sum(),
                },
                // Unreadable tree: leave the estimate unknown and retry on
                // the next write — the caps are best-effort, like `save`.
                Err(_) => return,
            },
        };
        let over = self.max_entries.is_some_and(|cap| estimate.entries > cap)
            || self.max_bytes.is_some_and(|cap| estimate.bytes > cap);
        if over {
            match self.gc(GcPolicy {
                max_entries: self.max_entries,
                max_bytes: self.max_bytes,
                max_age: None,
            }) {
                Ok(outcome) => {
                    *tracked = Some(TrackedSize {
                        entries: outcome.kept,
                        bytes: outcome.kept_bytes,
                    })
                }
                Err(_) => *tracked = None,
            }
        } else {
            *tracked = Some(estimate);
        }
    }

    /// Serves one `store_get` request from a peer: the primary tier's raw
    /// body at `address`, *without* touching the solve counters — a peer's
    /// lookup is not one of this process's solves.
    ///
    /// # Errors
    ///
    /// The primary backend's read error.
    pub fn peer_get(&self, address: &str) -> io::Result<Option<RawEntry>> {
        self.primary.get(address)
    }

    /// Serves one `store_put` request from a peer: validates the body
    /// (parseable, supported schema, exactly one outcome), derives the
    /// address from the *embedded* canonical key — the peer's claimed
    /// address is never trusted — and persists it through the same capped
    /// write path as local saves.
    ///
    /// # Errors
    ///
    /// A human-readable refusal when the body fails validation or the
    /// write fails.
    pub fn peer_put(&self, body: &str) -> Result<(), String> {
        let entry = serde_json::from_str::<StoredEntry>(body)
            .map_err(|e| format!("entry body is not valid JSON: {e}"))?;
        if !is_readable_schema(entry.schema) {
            return Err(format!(
                "unsupported entry schema {} (this build reads {OLDEST_READABLE_SCHEMA}..={STORE_SCHEMA_VERSION})",
                entry.schema
            ));
        }
        if entry.feasible.is_some() == entry.infeasible.is_some() {
            return Err("entry must hold exactly one of feasible/infeasible".to_string());
        }
        let address = address_of_parts(&entry.configuration, &entry.options, &entry.flow);
        if self.persist_primary(&address, body) {
            Ok(())
        } else {
            Err("store write failed".to_string())
        }
    }

    /// Every entry file of the primary tier, all supported versions,
    /// sorted oldest-first (ties broken by path so GC is deterministic
    /// regardless of readdir order). Entries whose mtime the filesystem
    /// cannot report are stamped with the scan time — i.e. as the newest
    /// files present — so retention policies never mistake them for
    /// infinitely old. Files that vanish mid-scan — a concurrent
    /// `gc`/`clear` — are skipped, not errors.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the tree cannot be read.
    pub fn entries(&self) -> io::Result<Vec<StoreEntry>> {
        self.primary.list()
    }

    /// Scans the whole primary tier for `bbs cache stats`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the tree cannot be read.
    pub fn summary(&self) -> io::Result<StoreSummary> {
        let mut summary = StoreSummary::default();
        for entry in self.primary.list()? {
            summary.total_bytes += entry.bytes;
            let raw = self.primary.read_body(&entry).ok();
            if let Some(raw) = &raw {
                summary.logical_bytes += raw.body.len() as u64;
            }
            // Classify with the same validity rule lookups apply, so stats
            // never report entries a lookup would reject.
            let parsed = raw
                .and_then(|raw| serde_json::from_str::<StoredEntry>(&raw.body).ok())
                .filter(|parsed| is_readable_schema(parsed.schema));
            match parsed.map(|parsed| (parsed.feasible.is_some(), parsed.infeasible.is_some())) {
                Some((true, false)) => {
                    summary.entries += 1;
                    summary.feasible += 1;
                }
                Some((false, true)) => {
                    summary.entries += 1;
                    summary.infeasible += 1;
                }
                Some(_) | None => {
                    summary.corrupt += 1;
                    continue;
                }
            }
            if entry.version == 1 {
                summary.v1_entries += 1;
            } else {
                summary.v2_entries += 1;
            }
        }
        Ok(summary)
    }

    /// Removes every entry of the primary tier (all schema versions).
    /// Returns the number of files removed.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the tree cannot be
    /// removed.
    pub fn clear(&self) -> io::Result<u64> {
        self.primary.clear()
    }

    /// Applies a retention policy to the primary tier: first drops entries
    /// older than `max_age` (entries with unreadable mtimes are exempt —
    /// they count as written now), then — oldest first — drops entries
    /// beyond `max_entries`, then beyond `max_bytes`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the tree cannot be read
    /// (individual failed removals are skipped, not errors: a concurrent
    /// run may have removed or replaced the file already).
    pub fn gc(&self, policy: GcPolicy) -> io::Result<GcOutcome> {
        let entries = self.primary.list()?;
        let (remove, mut outcome) = plan_gc(&entries, policy, SystemTime::now());
        for entry in remove {
            if self.primary.remove(entry).unwrap_or(false) {
                outcome.removed += 1;
            }
        }
        Ok(outcome)
    }

    /// Migrates every valid `v1` (plain JSON) entry of the primary tier
    /// into the current compressed `v2` container format, in place —
    /// `bbs cache gc --recompress`. Bodies are carried over *verbatim*
    /// (never re-serialised), so the collision guard and a warm replay are
    /// untouched; only the container changes. Corrupt `v1` files are left
    /// in place for `bbs cache stats` to report.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the tree cannot be read.
    pub fn recompress(&self) -> io::Result<RecompressOutcome> {
        let mut outcome = RecompressOutcome::default();
        for entry in self.primary.list()? {
            if entry.version >= STORE_SCHEMA_VERSION {
                outcome.already_current += 1;
                continue;
            }
            let Ok(raw) = self.primary.read_body(&entry) else {
                outcome.corrupt += 1;
                continue;
            };
            let valid = serde_json::from_str::<StoredEntry>(&raw.body)
                .ok()
                .filter(|parsed| is_readable_schema(parsed.schema))
                .is_some_and(|parsed| parsed.feasible.is_some() != parsed.infeasible.is_some());
            let Some(address) = entry_file_address(&entry.path) else {
                outcome.corrupt += 1;
                continue;
            };
            if !valid {
                outcome.corrupt += 1;
                continue;
            }
            // `put` supersedes the v1 container as part of its contract.
            if self.primary.put(&address, &raw.body).is_ok() {
                outcome.migrated += 1;
            } else {
                outcome.failed += 1;
            }
        }
        Ok(outcome)
    }
}

/// The content address of a key: the 16-hex-digit FNV-1a hash over the
/// full canonical identity — the file stem every backend stores the entry
/// under.
pub fn entry_address(key: &CanonicalKey) -> String {
    address_of_parts(&key.configuration, &key.options, &key.flow)
}

/// [`entry_address`] from the raw canonical strings (used when the key
/// arrives embedded in an entry body instead of as a [`CanonicalKey`]).
/// NUL separators keep `(configuration, options)` splits unambiguous.
pub fn address_of_parts(configuration: &str, options: &str, flow: &str) -> String {
    let mut bytes = Vec::with_capacity(configuration.len() + options.len() + flow.len() + 2);
    bytes.extend_from_slice(configuration.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(options.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(flow.as_bytes());
    format!("{:016x}", fnv1a(&bytes))
}

/// Whether `text` is a well-formed entry address (16 lowercase hex
/// digits) — the validation peers apply to `store_get` requests.
pub fn is_entry_address(text: &str) -> bool {
    text.len() == 16
        && text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Whether entries of this schema version are readable by this build.
fn is_readable_schema(schema: u64) -> bool {
    (OLDEST_READABLE_SCHEMA..=STORE_SCHEMA_VERSION).contains(&schema)
}

/// The address an entry file sits at: its stem, when it is one.
fn entry_file_address(path: &Path) -> Option<String> {
    let stem = path.file_stem()?.to_str()?;
    is_entry_address(stem).then(|| stem.to_string())
}

/// Encodes one persistable result as an entry body (`None` for transient
/// errors, which are deliberately not persisted).
fn encode_entry(key: &CanonicalKey, result: &Result<Mapping, MappingError>) -> Option<String> {
    let outcome = match result {
        Ok(mapping) => (Some(encode_mapping(mapping)), None),
        Err(error) => match encode_infeasibility(error) {
            Some(stored) => (None, Some(stored)),
            None => return None,
        },
    };
    let entry = StoredEntry {
        schema: STORE_SCHEMA_VERSION,
        fingerprint: key.fingerprint,
        configuration: key.configuration.clone(),
        options: key.options.clone(),
        flow: key.flow.clone(),
        feasible: outcome.0,
        infeasible: outcome.1,
    };
    let mut text = serde_json::to_string(&entry).ok()?;
    text.push('\n');
    Some(text)
}

/// The pure retention decision behind [`SolveStore::gc`]: which of the
/// scanned `entries` (oldest-first, as [`SolveStore::entries`] returns
/// them) to remove under `policy` at time `now`. Returns the doomed
/// entries and the outcome with `removed` still zero (the caller counts
/// actual deletions). Split out so eviction order — including mtime ties,
/// unreadable mtimes and the byte budget — is testable without
/// manipulating a filesystem.
fn plan_gc(
    entries: &[StoreEntry],
    policy: GcPolicy,
    now: SystemTime,
) -> (Vec<&StoreEntry>, GcOutcome) {
    let mut keep: Vec<&StoreEntry> = Vec::new();
    let mut remove: Vec<&StoreEntry> = Vec::new();
    let mut outcome = GcOutcome::default();
    for entry in entries {
        if !entry.mtime_readable {
            outcome.unreadable_mtimes += 1;
        }
        let age = now.duration_since(entry.modified).unwrap_or(Duration::ZERO);
        // An unreadable mtime counts as "written now": exempt from age
        // eviction instead of looking infinitely old and wiping the store.
        if entry.mtime_readable && policy.max_age.is_some_and(|limit| age > limit) {
            remove.push(entry);
        } else {
            keep.push(entry);
        }
    }
    if let Some(max_entries) = policy.max_entries {
        // `keep` is oldest-first, so the excess head is the oldest.
        let excess = keep.len().saturating_sub(max_entries as usize);
        remove.extend(keep.drain(..excess));
    }
    if let Some(max_bytes) = policy.max_bytes {
        let mut kept_bytes: u64 = keep.iter().map(|entry| entry.bytes).sum();
        let mut cut = 0;
        while kept_bytes > max_bytes && cut < keep.len() {
            kept_bytes -= keep[cut].bytes;
            cut += 1;
        }
        remove.extend(keep.drain(..cut));
    }
    outcome.kept = keep.len() as u64;
    outcome.kept_bytes = keep.iter().map(|entry| entry.bytes).sum();
    (remove, outcome)
}

fn encode_mapping(mapping: &Mapping) -> StoredMapping {
    StoredMapping {
        raw_budgets: mapping
            .budgets()
            .map(|(task, _)| (task, mapping.raw_budget(task)))
            .collect(),
        raw_space: mapping
            .capacities()
            .map(|(buffer, _)| (buffer, mapping.raw_space(buffer)))
            .collect(),
        objective: mapping.objective(),
        solver_iterations: mapping.solver_iterations() as u64,
    }
}

/// Rebuilds the mapping through [`Mapping::from_raw`], which re-applies the
/// paper's deterministic rounding — the result is identical to the original
/// solve. Returns `None` when the stored task/buffer references do not
/// match the configuration (a tampered or corrupt entry).
fn decode_mapping(stored: &StoredMapping, configuration: &Configuration) -> Option<Mapping> {
    let tasks = configuration.all_tasks();
    let buffers = configuration.all_buffers();
    let raw_budgets: BTreeMap<TaskRef, f64> = stored.raw_budgets.iter().copied().collect();
    let raw_space: BTreeMap<BufferRef, f64> = stored.raw_space.iter().copied().collect();
    let references_match = raw_budgets.len() == tasks.len()
        && tasks.iter().all(|task| raw_budgets.contains_key(task))
        && raw_space.len() == buffers.len()
        && buffers.iter().all(|buffer| raw_space.contains_key(buffer));
    if !references_match {
        return None;
    }
    Some(Mapping::from_raw(
        configuration,
        raw_budgets,
        raw_space,
        stored.objective,
        stored.solver_iterations as usize,
    ))
}

/// Encodes the genuine-infeasibility [`MappingError`] variants; everything
/// else (solver breakdowns, model errors, verification failures) returns
/// `None` and is deliberately not persisted.
fn encode_infeasibility(error: &MappingError) -> Option<StoredInfeasibility> {
    let empty = StoredInfeasibility {
        kind: String::new(),
        detail: None,
        buffer: None,
        cap: None,
        initial_tokens: None,
        processor: None,
        required_cycles: None,
        available_cycles: None,
        memory: None,
        required_storage: None,
        available_storage: None,
    };
    match error {
        MappingError::Infeasible { detail } => Some(StoredInfeasibility {
            kind: "infeasible".to_string(),
            detail: Some(detail.clone()),
            ..empty
        }),
        MappingError::CapBelowInitialTokens {
            buffer,
            cap,
            initial_tokens,
        } => Some(StoredInfeasibility {
            kind: "cap-below-initial-tokens".to_string(),
            buffer: Some(*buffer),
            cap: Some(*cap),
            initial_tokens: Some(*initial_tokens),
            ..empty
        }),
        MappingError::ProcessorOverloaded {
            processor,
            required,
            available,
        } => Some(StoredInfeasibility {
            kind: "processor-overloaded".to_string(),
            processor: Some(*processor),
            required_cycles: Some(*required),
            available_cycles: Some(*available),
            ..empty
        }),
        MappingError::MemoryOverflow {
            memory,
            required,
            available,
        } => Some(StoredInfeasibility {
            kind: "memory-overflow".to_string(),
            memory: Some(*memory),
            required_storage: Some(*required),
            available_storage: Some(*available),
            ..empty
        }),
        MappingError::Model(_)
        | MappingError::Solver(_)
        | MappingError::VerificationFailed { .. } => None,
    }
}

fn decode_infeasibility(stored: &StoredInfeasibility) -> Option<MappingError> {
    match stored.kind.as_str() {
        "infeasible" => Some(MappingError::Infeasible {
            detail: stored.detail.clone()?,
        }),
        "cap-below-initial-tokens" => Some(MappingError::CapBelowInitialTokens {
            buffer: stored.buffer?,
            cap: stored.cap?,
            initial_tokens: stored.initial_tokens?,
        }),
        "processor-overloaded" => Some(MappingError::ProcessorOverloaded {
            processor: stored.processor?,
            required: stored.required_cycles?,
            available: stored.available_cycles?,
        }),
        "memory-overflow" => Some(MappingError::MemoryOverflow {
            memory: stored.memory?,
            required: stored.required_storage?,
            available: stored.available_storage?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
    use bbs_taskgraph::{BufferId, TaskGraphId, TaskId};
    use budget_buffer::{compute_mapping, with_capacity_cap, SolveOptions};
    use std::fs;

    fn solved() -> (Configuration, CanonicalKey, Result<Mapping, MappingError>) {
        let configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 4);
        let options = SolveOptions::default().prefer_budget_minimisation();
        let key = CanonicalKey::from_parts(&configuration, &options, "joint");
        let result = compute_mapping(&configuration, &options);
        (configuration, key, result)
    }

    /// The v2 container path of `key` under `root` (test-side mirror of the
    /// local backend's layout).
    fn v2_path(root: &Path, key: &CanonicalKey) -> PathBuf {
        LocalDirBackend::open_existing(root)
            .unwrap()
            .v2_path(&entry_address(key))
    }

    /// Reads a v2 container's body text back (decompressed).
    fn read_v2(path: &Path) -> String {
        String::from_utf8(minilz::decompress(&fs::read(path).unwrap()).unwrap()).unwrap()
    }

    /// Writes `text` as a v2 container (compressed, non-atomically — tests
    /// only).
    fn write_v2(path: &Path, text: &str) {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, minilz::compress(text.as_bytes())).unwrap();
    }

    /// Writes a pre-migration plain-JSON v1 container for `key`.
    fn write_v1(root: &Path, key: &CanonicalKey, body: &str) -> PathBuf {
        let path = LocalDirBackend::open_existing(root)
            .unwrap()
            .v1_path(&entry_address(key));
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, body).unwrap();
        path
    }

    #[test]
    fn mapping_round_trips_bit_identically() {
        let directory = TempDir::new("roundtrip");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        let loaded = store.load(&key, &configuration).expect("entry persisted");
        assert_eq!(loaded.unwrap(), result.unwrap());
        assert_eq!(store.stats().disk_hits, 1);
        assert_eq!(store.stats().stored, 1);
        assert!(!store.stats().remote_enabled);
    }

    #[test]
    fn missing_entry_is_a_fresh_solve_not_a_rejection() {
        let directory = TempDir::new("missing");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, _) = solved();
        assert!(store.load(&key, &configuration).is_none());
        let stats = store.stats();
        assert_eq!(stats.fresh_solves, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn infeasibility_variants_round_trip() {
        let cases = vec![
            MappingError::Infeasible {
                detail: "dual unbounded".to_string(),
            },
            MappingError::CapBelowInitialTokens {
                buffer: BufferRef::new(TaskGraphId::new(0), BufferId::new(1)),
                cap: 1,
                initial_tokens: 2,
            },
            MappingError::ProcessorOverloaded {
                processor: ProcessorId::new(3),
                required: 41.5,
                available: 40.0,
            },
            MappingError::MemoryOverflow {
                memory: MemoryId::new(0),
                required: 12,
                available: 8,
            },
        ];
        for error in cases {
            let stored = encode_infeasibility(&error).expect("persistable");
            let json = serde_json::to_string(&stored).unwrap();
            let back: StoredInfeasibility = serde_json::from_str(&json).unwrap();
            let decoded = decode_infeasibility(&back).expect("decodable");
            assert_eq!(decoded, error);
            assert_eq!(decoded.to_string(), error.to_string());
        }
    }

    #[test]
    fn transient_errors_are_not_persisted() {
        use bbs_conic::ConicError;
        let directory = TempDir::new("transient");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, _) = solved();
        store.save(&key, &Err(MappingError::Solver(ConicError::NonFiniteData)));
        assert_eq!(store.stats().stored, 0);
        assert!(store.load(&key, &configuration).is_none());
        assert!(encode_infeasibility(&MappingError::VerificationFailed {
            graph: None,
            detail: "x".to_string(),
        })
        .is_none());
    }

    #[test]
    fn corrupt_and_foreign_schema_entries_are_rejected() {
        let directory = TempDir::new("corrupt");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        let path = v2_path(directory.path(), &key);

        // Not a valid minilz frame at all: an unreadable container.
        fs::write(&path, "{truncated").unwrap();
        assert!(store.load(&key, &configuration).is_none());

        // A well-formed container holding a foreign schema version.
        store.save(&key, &result);
        let mut entry: StoredEntry = serde_json::from_str(&read_v2(&path)).unwrap();
        entry.schema = STORE_SCHEMA_VERSION + 1;
        write_v2(&path, &serde_json::to_string(&entry).unwrap());
        assert!(store.load(&key, &configuration).is_none());
        assert_eq!(store.stats().rejected, 2);
    }

    #[test]
    fn hash_collisions_fall_back_to_a_fresh_solve() {
        let directory = TempDir::new("collision");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        // Simulate a 64-bit hash collision: a different canonical key whose
        // entry file happens to be the one we just wrote. (`try_load`
        // directly: `load`'s debug assertion — correctly — refuses a key
        // that does not match its configuration, and no real Configuration
        // can produce this synthetic canonical JSON.)
        let mut colliding = key.clone();
        colliding.configuration.push(' ');
        let collision_path = v2_path(directory.path(), &colliding);
        fs::create_dir_all(collision_path.parent().unwrap()).unwrap();
        fs::copy(v2_path(directory.path(), &key), &collision_path).unwrap();
        assert!(
            store.try_load(&colliding, &configuration).is_none(),
            "collision must miss"
        );
        assert_eq!(store.stats().rejected, 1);
    }

    #[test]
    fn tampered_references_are_rejected_not_panicking() {
        let directory = TempDir::new("tamper");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        let path = v2_path(directory.path(), &key);
        let mut entry: StoredEntry = serde_json::from_str(&read_v2(&path)).unwrap();
        let stored = entry.feasible.as_mut().unwrap();
        // Point a budget at a task that does not exist in the configuration.
        stored.raw_budgets[0].0 = TaskRef::new(TaskGraphId::new(7), TaskId::new(9));
        write_v2(&path, &serde_json::to_string(&entry).unwrap());
        assert!(store.load(&key, &configuration).is_none());
        assert_eq!(store.stats().rejected, 1);
    }

    #[test]
    fn clear_empties_the_store() {
        let directory = TempDir::new("clear");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        store.save(&key, &result);
        assert_eq!(store.summary().unwrap().entries, 1);
        assert_eq!(store.clear().unwrap(), 1);
        assert_eq!(store.summary().unwrap().entries, 0);
        // The store stays usable after a clear.
        store.save(&key, &result);
        assert!(store.load(&key, &configuration).is_some());
    }

    #[test]
    fn gc_honours_max_entries_and_max_age() {
        let directory = TempDir::new("gc");
        let store = SolveStore::open(directory.path()).unwrap();
        let base = producer_consumer(PaperParameters::default(), None);
        let options = SolveOptions::default().prefer_budget_minimisation();
        for cap in 1..=4u64 {
            let configuration = with_capacity_cap(&base, cap);
            let key = CanonicalKey::from_parts(&configuration, &options, "joint");
            store.save(&key, &compute_mapping(&configuration, &options));
        }
        assert_eq!(store.summary().unwrap().entries, 4);

        let outcome = store
            .gc(GcPolicy {
                max_entries: Some(2),
                ..GcPolicy::default()
            })
            .unwrap();
        assert_eq!(outcome.removed, 2);
        assert_eq!(outcome.kept, 2);
        assert!(outcome.kept_bytes > 0);
        assert_eq!(store.summary().unwrap().entries, 2);

        std::thread::sleep(Duration::from_millis(20));
        let outcome = store
            .gc(GcPolicy {
                max_age: Some(Duration::from_millis(1)),
                ..GcPolicy::default()
            })
            .unwrap();
        assert_eq!(outcome.removed, 2);
        assert_eq!(store.summary().unwrap().entries, 0);
    }

    fn synthetic_entry(name: &str, age: Duration, now: SystemTime, readable: bool) -> StoreEntry {
        StoreEntry {
            path: PathBuf::from(name),
            version: STORE_SCHEMA_VERSION,
            modified: now.checked_sub(age).unwrap(),
            mtime_readable: readable,
            bytes: 1,
        }
    }

    fn removed_paths<'e>(remove: &[&'e StoreEntry]) -> Vec<&'e PathBuf> {
        remove.iter().map(|entry| &entry.path).collect()
    }

    #[test]
    fn gc_never_age_evicts_unreadable_mtimes() {
        // Regression: unreadable mtimes used to decay to UNIX_EPOCH, so on
        // a filesystem without mtimes `gc --max-age` wiped every entry.
        let now = SystemTime::now();
        let entries = vec![
            synthetic_entry("a-old", Duration::from_secs(100), now, true),
            // As `entries()` builds them: stamped with the scan time.
            synthetic_entry("b-unreadable", Duration::ZERO, now, false),
            synthetic_entry("c-fresh", Duration::from_secs(1), now, true),
        ];
        let policy = GcPolicy {
            max_age: Some(Duration::from_secs(10)),
            ..GcPolicy::default()
        };
        let (remove, outcome) = plan_gc(&entries, policy, now);
        assert_eq!(removed_paths(&remove), vec![&PathBuf::from("a-old")]);
        assert_eq!(outcome.kept, 2);
        assert_eq!(outcome.unreadable_mtimes, 1);
        assert_eq!(outcome.removed, 0, "the caller counts actual deletions");
    }

    #[test]
    fn gc_max_entries_still_bounds_unreadable_mtimes() {
        // The age exemption must not make unreadable entries immortal: a
        // size cap still applies to them (oldest-sorted-first as scanned).
        let now = SystemTime::now();
        let entries: Vec<StoreEntry> = (0..3)
            .map(|i| synthetic_entry(&format!("u{i}"), Duration::ZERO, now, false))
            .collect();
        let policy = GcPolicy {
            max_entries: Some(1),
            max_age: Some(Duration::from_secs(10)),
            ..GcPolicy::default()
        };
        let (remove, outcome) = plan_gc(&entries, policy, now);
        assert_eq!(
            removed_paths(&remove),
            vec![&PathBuf::from("u0"), &PathBuf::from("u1")]
        );
        assert_eq!(outcome.kept, 1);
        assert_eq!(outcome.unreadable_mtimes, 3);
    }

    #[test]
    fn gc_byte_budget_evicts_oldest_first() {
        let now = SystemTime::now();
        let mut entries = vec![
            synthetic_entry("a-oldest", Duration::from_secs(30), now, true),
            synthetic_entry("b-mid", Duration::from_secs(20), now, true),
            synthetic_entry("c-newest", Duration::from_secs(10), now, true),
        ];
        for entry in &mut entries {
            entry.bytes = 100;
        }
        let policy = GcPolicy {
            max_bytes: Some(250),
            ..GcPolicy::default()
        };
        let (remove, outcome) = plan_gc(&entries, policy, now);
        assert_eq!(removed_paths(&remove), vec![&PathBuf::from("a-oldest")]);
        assert_eq!(outcome.kept, 2);
        assert_eq!(outcome.kept_bytes, 200);

        // The budget applies after the entry cap: both constraints hold.
        let policy = GcPolicy {
            max_entries: Some(2),
            max_bytes: Some(150),
            ..GcPolicy::default()
        };
        let (remove, outcome) = plan_gc(&entries, policy, now);
        assert_eq!(
            removed_paths(&remove),
            vec![&PathBuf::from("a-oldest"), &PathBuf::from("b-mid")]
        );
        assert_eq!(outcome.kept, 1);
        assert_eq!(outcome.kept_bytes, 100);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        // Entries with identical mtimes must evict in deterministic path
        // order no matter the order the files were created (and hence the
        // readdir order a scan might observe).
        #[test]
        fn gc_breaks_mtime_ties_by_path_regardless_of_creation_order(seed in 0u64..1_000_000) {
            let directory = TempDir::new("gc-ties");
            let store = SolveStore::open(directory.path()).unwrap();
            let base = producer_consumer(PaperParameters::default(), None);
            let options = SolveOptions::default().prefer_budget_minimisation();

            // Shuffle the creation order with a splitmix-style permutation.
            let mut caps: Vec<u64> = (1..=6).collect();
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            for i in (1..caps.len()).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                caps.swap(i, (state % (i as u64 + 1)) as usize);
            }
            for &cap in &caps {
                let configuration = with_capacity_cap(&base, cap);
                let key = CanonicalKey::from_parts(&configuration, &options, "joint");
                store.save(&key, &compute_mapping(&configuration, &options));
            }

            // Force a full mtime tie across every entry.
            let tie = SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000);
            let scanned = store.entries().unwrap();
            proptest::prop_assert_eq!(scanned.len(), 6);
            for entry in &scanned {
                fs::File::options()
                    .write(true)
                    .open(&entry.path)
                    .unwrap()
                    .set_modified(tie)
                    .unwrap();
            }

            let mut all_paths: Vec<PathBuf> =
                scanned.into_iter().map(|entry| entry.path).collect();
            all_paths.sort();
            let outcome = store
                .gc(GcPolicy { max_entries: Some(3), ..GcPolicy::default() })
                .unwrap();
            proptest::prop_assert_eq!(outcome.removed, 3);
            proptest::prop_assert_eq!(outcome.kept, 3);
            let survivors: Vec<PathBuf> = store
                .entries()
                .unwrap()
                .into_iter()
                .map(|entry| entry.path)
                .collect();
            // Tied entries evict in path order: the lexicographically first
            // half goes, the rest survive — independent of `seed`.
            proptest::prop_assert_eq!(&survivors[..], &all_paths[3..]);
        }
    }

    #[test]
    fn automatic_size_cap_bounds_the_store_on_the_write_path() {
        let directory = TempDir::new("auto-cap");
        let store = SolveStore::open(directory.path())
            .unwrap()
            .with_max_entries(2);
        assert_eq!(store.max_entries(), Some(2));
        let base = producer_consumer(PaperParameters::default(), None);
        let options = SolveOptions::default().prefer_budget_minimisation();
        for cap in 1..=5u64 {
            let configuration = with_capacity_cap(&base, cap);
            let key = CanonicalKey::from_parts(&configuration, &options, "joint");
            store.save(&key, &compute_mapping(&configuration, &options));
            assert!(
                store.summary().unwrap().entries <= 2,
                "the cap must hold after every write"
            );
        }
        assert_eq!(store.summary().unwrap().entries, 2);
        // All five writes happened; the cap evicts, it does not block.
        assert_eq!(store.stats().stored, 5);
    }

    #[test]
    fn automatic_byte_budget_bounds_the_store_on_the_write_path() {
        let base = producer_consumer(PaperParameters::default(), None);
        let options = SolveOptions::default().prefer_budget_minimisation();
        // Measure one entry's physical (compressed) size first.
        let probe_dir = TempDir::new("byte-cap-probe");
        let probe = SolveStore::open(probe_dir.path()).unwrap();
        let configuration = with_capacity_cap(&base, 1);
        let key = CanonicalKey::from_parts(&configuration, &options, "joint");
        probe.save(&key, &compute_mapping(&configuration, &options));
        let entry_bytes = probe.summary().unwrap().total_bytes;
        assert!(entry_bytes > 0);

        // Budget for roughly two entries; five writes must stay within it.
        let budget = entry_bytes * 2 + entry_bytes / 2;
        let directory = TempDir::new("byte-cap");
        let store = SolveStore::open(directory.path())
            .unwrap()
            .with_max_bytes(budget);
        assert_eq!(store.max_bytes(), Some(budget));
        for cap in 1..=5u64 {
            let configuration = with_capacity_cap(&base, cap);
            let key = CanonicalKey::from_parts(&configuration, &options, "joint");
            store.save(&key, &compute_mapping(&configuration, &options));
            assert!(
                store.summary().unwrap().total_bytes <= budget,
                "the byte budget must hold after every write"
            );
        }
        assert_eq!(store.stats().stored, 5);
        assert!(store.summary().unwrap().entries >= 1);
    }

    #[test]
    fn overwriting_one_key_under_a_cap_keeps_the_entry() {
        let directory = TempDir::new("auto-cap-overwrite");
        let store = SolveStore::open(directory.path())
            .unwrap()
            .with_max_entries(1);
        let (configuration, key, result) = solved();
        for _ in 0..3 {
            store.save(&key, &result);
        }
        assert_eq!(store.summary().unwrap().entries, 1);
        assert!(store.load(&key, &configuration).is_some());
    }

    #[test]
    fn uncapped_stores_never_run_the_write_path_gc() {
        let directory = TempDir::new("no-cap");
        let store = SolveStore::open(directory.path()).unwrap();
        let base = producer_consumer(PaperParameters::default(), None);
        let options = SolveOptions::default().prefer_budget_minimisation();
        for cap in 1..=4u64 {
            let configuration = with_capacity_cap(&base, cap);
            let key = CanonicalKey::from_parts(&configuration, &options, "joint");
            store.save(&key, &compute_mapping(&configuration, &options));
        }
        assert_eq!(store.summary().unwrap().entries, 4);
    }

    #[test]
    fn summary_counts_feasible_infeasible_and_corrupt() {
        let directory = TempDir::new("summary");
        let store = SolveStore::open(directory.path()).unwrap();
        let (_, key, result) = solved();
        store.save(&key, &result);
        let infeasible_configuration =
            with_capacity_cap(&producer_consumer(PaperParameters::default(), None), 2);
        let options = SolveOptions::default().prefer_budget_minimisation();
        let infeasible_key =
            CanonicalKey::from_parts(&infeasible_configuration, &options, "two-phase-min");
        store.save(
            &infeasible_key,
            &Err(MappingError::Infeasible {
                detail: "injected".to_string(),
            }),
        );
        let shard = directory
            .path()
            .join(format!("v{STORE_SCHEMA_VERSION}"))
            .join("zz");
        fs::create_dir_all(&shard).unwrap();
        fs::write(shard.join("junk.mlz"), "not a frame").unwrap();
        let summary = store.summary().unwrap();
        assert_eq!(summary.entries, 2);
        assert_eq!(summary.feasible, 1);
        assert_eq!(summary.infeasible, 1);
        assert_eq!(summary.corrupt, 1);
        assert_eq!(summary.v2_entries, 2);
        assert_eq!(summary.v1_entries, 0);
        assert!(summary.total_bytes > 0);
        assert!(
            summary.logical_bytes > summary.total_bytes - 11,
            "logical counts uncompressed bodies (junk contributes physical only)"
        );
    }

    /// Produces the exact plain-JSON body a v1-era build would have written
    /// for this key/result.
    fn v1_body(key: &CanonicalKey, result: &Result<Mapping, MappingError>) -> String {
        let mut body = encode_entry(key, result).unwrap();
        // encode_entry stamps the current schema; a v1 build wrote 1.
        body = body.replacen(
            &format!("\"schema\":{STORE_SCHEMA_VERSION}"),
            "\"schema\":1",
            1,
        );
        body
    }

    #[test]
    fn v1_entries_are_read_and_superseded_on_rewrite() {
        let directory = TempDir::new("v1-compat");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        let v1 = write_v1(directory.path(), &key, &v1_body(&key, &result));

        // A v1 tree is fully visible: lookups, stats, per-version counts.
        let loaded = store.load(&key, &configuration).expect("v1 entry readable");
        assert_eq!(loaded.unwrap(), result.clone().unwrap());
        assert_eq!(store.stats().disk_hits, 1);
        let summary = store.summary().unwrap();
        assert_eq!(summary.entries, 1);
        assert_eq!(summary.v1_entries, 1);
        assert_eq!(summary.v2_entries, 0);
        assert_eq!(summary.logical_bytes, summary.total_bytes);

        // A rewrite migrates the entry: the v2 container supersedes the v1
        // file so scans see exactly one entry per key.
        store.save(&key, &result);
        assert!(!v1.exists(), "v1 container must be superseded");
        assert!(v2_path(directory.path(), &key).exists());
        assert_eq!(store.summary().unwrap().v2_entries, 1);
    }

    #[test]
    fn recompress_migrates_v1_bodies_verbatim() {
        let directory = TempDir::new("recompress");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        let body = v1_body(&key, &result);
        let v1 = write_v1(directory.path(), &key, &body);
        // One corrupt straggler stays in place.
        let junk = directory.path().join("v1").join("zz");
        fs::create_dir_all(&junk).unwrap();
        fs::write(junk.join("0000000000000000.json"), "not json").unwrap();

        let outcome = store.recompress().unwrap();
        assert_eq!(outcome.migrated, 1);
        assert_eq!(outcome.corrupt, 1);
        assert_eq!(outcome.already_current, 0);
        assert!(!v1.exists(), "migrated v1 container is removed");
        // The body survives byte-for-byte (still schema 1 inside a v2
        // container — containers and body schemas are independent).
        assert_eq!(read_v2(&v2_path(directory.path(), &key)), body);
        assert!(store.load(&key, &configuration).is_some());

        // A second pass finds nothing left to migrate.
        let again = store.recompress().unwrap();
        assert_eq!(again.migrated, 0);
        assert_eq!(again.already_current, 1);
    }

    #[test]
    fn entry_addresses_validate() {
        assert!(is_entry_address("0123456789abcdef"));
        assert!(!is_entry_address("0123456789ABCDEF"));
        assert!(!is_entry_address("0123456789abcde"));
        assert!(!is_entry_address("0123456789abcdef0"));
        assert!(!is_entry_address("../../etc/passwd"));
        let (_, key, _) = solved();
        assert!(is_entry_address(&entry_address(&key)));
    }

    #[test]
    fn peer_put_validates_and_derives_the_address() {
        let directory = TempDir::new("peer-put");
        let store = SolveStore::open(directory.path()).unwrap();
        let (configuration, key, result) = solved();
        let body = encode_entry(&key, &result).unwrap();

        store.peer_put(&body).expect("valid body accepted");
        // The address came from the embedded key, not a peer claim.
        assert!(store.load(&key, &configuration).is_some());
        assert_eq!(store.stats().stored, 1);

        assert!(store.peer_put("not json").is_err());
        let foreign = body.replacen(
            &format!("\"schema\":{STORE_SCHEMA_VERSION}"),
            &format!("\"schema\":{}", STORE_SCHEMA_VERSION + 1),
            1,
        );
        assert!(store.peer_put(&foreign).is_err());
        // Exactly one outcome: strip the feasible mapping out.
        let mut entry: StoredEntry = serde_json::from_str(&body).unwrap();
        entry.feasible = None;
        assert!(store
            .peer_put(&serde_json::to_string(&entry).unwrap())
            .is_err());
        assert_eq!(store.stats().stored, 1, "rejected bodies are not stored");
    }

    /// A shareable in-memory backend standing in for the remote tier, so
    /// the tiering logic is testable without a network.
    #[derive(Debug, Clone, Default)]
    struct MemBackend {
        entries: std::sync::Arc<Mutex<std::collections::BTreeMap<String, String>>>,
        gets: std::sync::Arc<AtomicU64>,
        puts: std::sync::Arc<AtomicU64>,
    }

    impl StoreBackend for MemBackend {
        fn describe(&self) -> String {
            "in-memory test backend".to_string()
        }
        fn get(&self, address: &str) -> io::Result<Option<RawEntry>> {
            self.gets.fetch_add(1, Ordering::Relaxed);
            Ok(self
                .entries
                .lock()
                .unwrap()
                .get(address)
                .map(|body| RawEntry {
                    version: STORE_SCHEMA_VERSION,
                    body: body.clone(),
                }))
        }
        fn put(&self, address: &str, body: &str) -> io::Result<u64> {
            self.puts.fetch_add(1, Ordering::Relaxed);
            self.entries
                .lock()
                .unwrap()
                .insert(address.to_string(), body.to_string());
            Ok(body.len() as u64)
        }
        fn list(&self) -> io::Result<Vec<StoreEntry>> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "list"))
        }
        fn read_body(&self, _entry: &StoreEntry) -> io::Result<RawEntry> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "read_body"))
        }
        fn remove(&self, _entry: &StoreEntry) -> io::Result<bool> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "remove"))
        }
        fn clear(&self) -> io::Result<u64> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "clear"))
        }
    }

    #[test]
    fn remote_tier_reads_through_and_writes_behind() {
        let shared = MemBackend::default();
        let (configuration, key, result) = solved();

        // Process 1: fresh solve; the save lands locally and on the remote.
        let dir_a = TempDir::new("tier-a");
        let store_a = SolveStore::open(dir_a.path())
            .unwrap()
            .with_remote(Box::new(shared.clone()));
        assert!(store_a.has_remote());
        assert!(store_a.load(&key, &configuration).is_none());
        store_a.save(&key, &result);
        assert_eq!(shared.puts.load(Ordering::Relaxed), 1);
        let stats = store_a.stats();
        assert_eq!(stats.fresh_solves, 1);
        assert_eq!(stats.remote_hits, 0);
        assert!(stats.remote_enabled);

        // Process 2, cold local dir: the remote answers, and read-through
        // populates the local tier.
        let dir_b = TempDir::new("tier-b");
        let store_b = SolveStore::open(dir_b.path())
            .unwrap()
            .with_remote(Box::new(shared.clone()));
        let loaded = store_b.load(&key, &configuration).expect("remote hit");
        assert_eq!(loaded.unwrap(), result.clone().unwrap());
        let stats = store_b.stats();
        assert_eq!(stats.remote_hits, 1);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.fresh_solves, 0);
        assert_eq!(stats.stored, 1, "read-through fill counts as stored");

        // The next lookup hits locally without touching the remote again.
        let gets_before = shared.gets.load(Ordering::Relaxed);
        assert!(store_b.load(&key, &configuration).is_some());
        assert_eq!(store_b.stats().disk_hits, 1);
        assert_eq!(shared.gets.load(Ordering::Relaxed), gets_before);
        // Read-through fills are not echoed back to the remote.
        assert_eq!(shared.puts.load(Ordering::Relaxed), 1);
    }
}
