//! The declarative scenario model: what to solve, over which capacity range,
//! with which options and flow.
//!
//! A [`Scenario`] is one named study — a workload (a preset by name or an
//! inline [`Configuration`]), an optional capacity sweep, the
//! [`SolveOptions`] to use and the flow (joint SOCP or one of the two-phase
//! baselines). A [`Suite`] is a named list of scenarios that runs as one
//! batch. Both (de)serialise to JSON, so whole experiment campaigns live in
//! plain files.

use crate::error::EngineError;
use bbs_taskgraph::presets::PresetSpec;
use bbs_taskgraph::Configuration;
use budget_buffer::SolveOptions;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which solving flow a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Flow {
    /// The paper's contribution: one joint budget/buffer SOCP.
    #[default]
    Joint,
    /// Two-phase baseline with throughput-minimum budgets fixed first.
    TwoPhaseMin,
    /// Two-phase baseline with fair-share budgets fixed first.
    TwoPhaseFair,
}

impl Flow {
    /// The canonical string form used in scenario files and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Flow::Joint => "joint",
            Flow::TwoPhaseMin => "two-phase-min",
            Flow::TwoPhaseFair => "two-phase-fair",
        }
    }

    /// Parses the canonical string form.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidScenario`] for an unknown flow name.
    pub fn parse(text: &str) -> Result<Self, EngineError> {
        match text {
            "joint" => Ok(Flow::Joint),
            "two-phase-min" => Ok(Flow::TwoPhaseMin),
            "two-phase-fair" => Ok(Flow::TwoPhaseFair),
            other => Err(EngineError::InvalidScenario(format!(
                "unknown flow `{other}`; known: joint, two-phase-min, two-phase-fair"
            ))),
        }
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a scenario's solved points are validated after solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationMode {
    /// Replay every feasible mapping on the discrete-event TDM simulator
    /// and check the measured period and buffer fill levels against the
    /// solver's guarantees.
    Sim,
}

impl ValidationMode {
    /// The canonical string form used in scenario files (`"sim"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ValidationMode::Sim => "sim",
        }
    }

    /// Parses the canonical string form.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidScenario`] for an unknown mode name.
    pub fn parse(text: &str) -> Result<Self, EngineError> {
        match text {
            "sim" => Ok(ValidationMode::Sim),
            other => Err(EngineError::InvalidScenario(format!(
                "unknown validation mode `{other}`; known: sim"
            ))),
        }
    }
}

impl fmt::Display for ValidationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a scenario's configuration comes from: a preset by name or an
/// inline configuration. Exactly one of the two must be set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// A preset generator reference (see [`PresetSpec`]).
    pub preset: Option<PresetSpec>,
    /// A full inline configuration.
    pub inline: Option<Configuration>,
}

impl WorkloadSpec {
    /// A workload built from a preset spec.
    pub fn preset(spec: PresetSpec) -> Self {
        Self {
            preset: Some(spec),
            inline: None,
        }
    }

    /// A workload carrying its configuration inline.
    pub fn inline(configuration: Configuration) -> Self {
        Self {
            preset: None,
            inline: Some(configuration),
        }
    }

    /// Builds the configuration the spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidScenario`] when neither or both sources
    /// are set, when the preset is unknown, or when the resulting
    /// configuration fails validation.
    pub fn resolve(&self) -> Result<Configuration, EngineError> {
        let configuration = match (&self.preset, &self.inline) {
            (Some(spec), None) => spec.build().map_err(EngineError::InvalidScenario)?,
            (None, Some(configuration)) => configuration.clone(),
            (None, None) => {
                return Err(EngineError::InvalidScenario(
                    "workload needs either `preset` or `inline`".to_string(),
                ))
            }
            (Some(_), Some(_)) => {
                return Err(EngineError::InvalidScenario(
                    "workload must set `preset` or `inline`, not both".to_string(),
                ))
            }
        };
        configuration
            .validate()
            .map_err(|e| EngineError::InvalidScenario(format!("invalid workload: {e}")))?;
        Ok(configuration)
    }
}

/// The buffer-capacity sweep of a scenario: either an inclusive `from..=to`
/// range or an explicit list of caps. An explicit list wins when both are
/// given.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// First capacity cap of the inclusive range.
    pub from: Option<u64>,
    /// Last capacity cap of the inclusive range.
    pub to: Option<u64>,
    /// Explicit capacity caps (overrides `from`/`to`).
    pub list: Option<Vec<u64>>,
}

impl SweepSpec {
    /// An inclusive `from..=to` sweep.
    pub fn range(from: u64, to: u64) -> Self {
        Self {
            from: Some(from),
            to: Some(to),
            list: None,
        }
    }

    /// A sweep over an explicit list of caps.
    pub fn list(caps: impl Into<Vec<u64>>) -> Self {
        Self {
            from: None,
            to: None,
            list: Some(caps.into()),
        }
    }

    /// The capacity caps the sweep expands to, in order.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidScenario`] for an empty or descending
    /// sweep and for caps of zero containers.
    pub fn caps(&self) -> Result<Vec<u64>, EngineError> {
        let caps: Vec<u64> = match (&self.list, self.from, self.to) {
            (Some(list), _, _) => list.clone(),
            (None, Some(from), Some(to)) if from <= to => (from..=to).collect(),
            (None, Some(from), Some(to)) => {
                return Err(EngineError::InvalidScenario(format!(
                    "sweep range {from}..={to} is descending"
                )))
            }
            _ => {
                return Err(EngineError::InvalidScenario(
                    "sweep needs `list` or both `from` and `to`".to_string(),
                ))
            }
        };
        if caps.is_empty() {
            return Err(EngineError::InvalidScenario("sweep is empty".to_string()));
        }
        if caps.contains(&0) {
            return Err(EngineError::InvalidScenario(
                "a capacity cap of 0 containers cannot hold any data".to_string(),
            ));
        }
        Ok(caps)
    }
}

/// One named study: workload, optional sweep, options, flow and
/// post-processing flags.
///
/// # Example
///
/// ```
/// use bbs_engine::{run_scenario, RunSettings, Scenario, SweepSpec, WorkloadSpec};
/// use bbs_taskgraph::presets::PresetSpec;
///
/// // Sweep the producer/consumer preset over capacity caps 1..=4 and
/// // report the per-container budget reduction (Figure 2(b)).
/// let scenario = Scenario::new(
///     "pc-tradeoff",
///     WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
/// )
/// .with_sweep(SweepSpec::range(1, 4))
/// .with_derivative();
/// scenario.validate().unwrap();
///
/// let outcome = run_scenario(&scenario, &RunSettings::default()).unwrap();
/// let totals = outcome.feasible_total_budgets();
/// assert_eq!(totals.len(), 4);
/// // More buffer space never costs budget.
/// assert!(totals.windows(2).all(|w| w[1] <= w[0]));
///
/// // Scenarios (and suites of them) round-trip through JSON files.
/// let json = serde_json::to_string(&scenario).unwrap();
/// assert_eq!(serde_json::from_str::<Scenario>(&json).unwrap(), scenario);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Name of the scenario, unique within its suite.
    pub name: String,
    /// Where the configuration comes from.
    pub workload: WorkloadSpec,
    /// Capacity sweep; `None` solves the workload once, as configured.
    pub sweep: Option<SweepSpec>,
    /// Solver options; `None` uses the paper's budget-priority weights.
    pub options: Option<SolveOptions>,
    /// Flow name (`joint`, `two-phase-min`, `two-phase-fair`); `None` means
    /// `joint`.
    pub flow: Option<String>,
    /// Also report the per-step budget reduction of the sweep (Figure 2(b)).
    pub derivative: Option<bool>,
    /// Legacy spelling of `validate: "sim"`, kept so existing scenario
    /// files keep working; prefer [`validate`](Self::validate) in new
    /// files.
    pub simulate: Option<bool>,
    /// Post-solve validation mode (`"sim"`); `None` skips validation
    /// unless the legacy `simulate` flag requests it.
    pub validate: Option<String>,
    /// The scenario is *expected* to contain infeasible points (for example
    /// the two-phase false negative); they then do not fail the run.
    pub expect_infeasible: Option<bool>,
}

impl Scenario {
    /// A joint-flow scenario with default options and no sweep.
    pub fn new(name: &str, workload: WorkloadSpec) -> Self {
        Self {
            name: name.to_string(),
            workload,
            sweep: None,
            options: None,
            flow: None,
            derivative: None,
            simulate: None,
            validate: None,
            expect_infeasible: None,
        }
    }

    /// Adds a capacity sweep.
    #[must_use]
    pub fn with_sweep(mut self, sweep: SweepSpec) -> Self {
        self.sweep = Some(sweep);
        self
    }

    /// Overrides the solver options.
    #[must_use]
    pub fn with_options(mut self, options: SolveOptions) -> Self {
        self.options = Some(options);
        self
    }

    /// Selects the flow.
    #[must_use]
    pub fn with_flow(mut self, flow: Flow) -> Self {
        self.flow = Some(flow.as_str().to_string());
        self
    }

    /// Requests the budget-reduction derivative series.
    #[must_use]
    pub fn with_derivative(mut self) -> Self {
        self.derivative = Some(true);
        self
    }

    /// Requests simulator validation of every point (the legacy spelling
    /// of [`with_validation`](Self::with_validation)).
    #[must_use]
    pub fn with_simulation(mut self) -> Self {
        self.simulate = Some(true);
        self
    }

    /// Requests post-solve validation of every point in the given mode.
    #[must_use]
    pub fn with_validation(mut self, mode: ValidationMode) -> Self {
        self.validate = Some(mode.as_str().to_string());
        self
    }

    /// Marks infeasible points as expected.
    #[must_use]
    pub fn expecting_infeasible(mut self) -> Self {
        self.expect_infeasible = Some(true);
        self
    }

    /// The parsed flow of the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidScenario`] for an unknown flow name.
    pub fn resolved_flow(&self) -> Result<Flow, EngineError> {
        match &self.flow {
            Some(name) => Flow::parse(name),
            None => Ok(Flow::Joint),
        }
    }

    /// The post-solve validation mode of the scenario, if any.
    ///
    /// The legacy `simulate: true` flag is an alias for `validate: "sim"`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidScenario`] for an unknown mode name.
    pub fn resolved_validation(&self) -> Result<Option<ValidationMode>, EngineError> {
        match &self.validate {
            Some(name) => ValidationMode::parse(name).map(Some),
            None if self.simulate == Some(true) => Ok(Some(ValidationMode::Sim)),
            None => Ok(None),
        }
    }

    /// The solver options of the scenario (the paper's budget-priority
    /// weights when unset).
    pub fn resolved_options(&self) -> SolveOptions {
        self.options
            .clone()
            .unwrap_or_else(|| SolveOptions::default().prefer_budget_minimisation())
    }

    /// Checks everything that can be checked without solving.
    ///
    /// # Errors
    ///
    /// Returns the first [`EngineError`] found: empty name, unresolvable
    /// workload, invalid sweep or unknown flow.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.name.is_empty() {
            return Err(EngineError::InvalidScenario(
                "scenario name must not be empty".to_string(),
            ));
        }
        self.workload.resolve()?;
        if let Some(sweep) = &self.sweep {
            sweep.caps()?;
        }
        self.resolved_flow()?;
        self.resolved_validation()?;
        Ok(())
    }
}

/// A named list of scenarios that runs as one batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suite {
    /// Name of the suite (reported in the run output).
    pub name: String,
    /// The scenarios, in execution/report order.
    pub scenarios: Vec<Scenario>,
}

impl Suite {
    /// Creates a suite from a list of scenarios.
    pub fn new(name: &str, scenarios: Vec<Scenario>) -> Self {
        Self {
            name: name.to_string(),
            scenarios,
        }
    }

    /// The structural half of [`Suite::validate`]: a non-empty,
    /// duplicate-free list of non-empty scenario names. Needs no workload
    /// resolution, so the executor can run it without building every
    /// configuration twice.
    ///
    /// # Errors
    ///
    /// Returns the first [`EngineError`] found.
    pub fn validate_structure(&self) -> Result<(), EngineError> {
        if self.scenarios.is_empty() {
            return Err(EngineError::InvalidScenario(format!(
                "suite `{}` has no scenarios",
                self.name
            )));
        }
        if self.scenarios.iter().any(|s| s.name.is_empty()) {
            return Err(EngineError::InvalidScenario(format!(
                "suite `{}` has a scenario with an empty name",
                self.name
            )));
        }
        let mut names: Vec<&str> = self.scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        for pair in names.windows(2) {
            if pair[0] == pair[1] {
                return Err(EngineError::InvalidScenario(format!(
                    "suite `{}` has two scenarios named `{}`",
                    self.name, pair[0]
                )));
            }
        }
        Ok(())
    }

    /// Validates the suite fully: structure plus every scenario (including
    /// workload resolution).
    ///
    /// # Errors
    ///
    /// Returns the first [`EngineError`] found.
    pub fn validate(&self) -> Result<(), EngineError> {
        self.validate_structure()?;
        for scenario in &self.scenarios {
            scenario.validate().map_err(|e| {
                EngineError::InvalidScenario(format!("scenario `{}`: {e}", scenario.name))
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_taskgraph::presets::{producer_consumer, PaperParameters};

    fn pc_scenario() -> Scenario {
        Scenario::new(
            "pc",
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
        )
        .with_sweep(SweepSpec::range(1, 4))
    }

    #[test]
    fn workload_resolves_presets_and_inline() {
        let from_preset = WorkloadSpec::preset(PresetSpec::named("producer-consumer"))
            .resolve()
            .unwrap();
        let direct = producer_consumer(PaperParameters::default(), None);
        assert_eq!(from_preset, direct);
        let from_inline = WorkloadSpec::inline(direct.clone()).resolve().unwrap();
        assert_eq!(from_inline, direct);
    }

    #[test]
    fn workload_rejects_neither_and_both() {
        let neither = WorkloadSpec {
            preset: None,
            inline: None,
        };
        assert!(neither.resolve().is_err());
        let both = WorkloadSpec {
            preset: Some(PresetSpec::named("producer-consumer")),
            inline: Some(producer_consumer(PaperParameters::default(), None)),
        };
        assert!(both.resolve().is_err());
    }

    #[test]
    fn sweep_expands_ranges_and_lists() {
        assert_eq!(SweepSpec::range(1, 4).caps().unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(
            SweepSpec::list([1u64, 2, 4, 6]).caps().unwrap(),
            vec![1, 2, 4, 6]
        );
        assert!(SweepSpec::range(4, 1).caps().is_err());
        assert!(SweepSpec::list(Vec::<u64>::new()).caps().is_err());
        assert!(SweepSpec::list([0u64]).caps().is_err());
    }

    #[test]
    fn flow_parses_and_round_trips() {
        for flow in [Flow::Joint, Flow::TwoPhaseMin, Flow::TwoPhaseFair] {
            assert_eq!(Flow::parse(flow.as_str()).unwrap(), flow);
        }
        assert!(Flow::parse("simplex").is_err());
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let scenario = pc_scenario()
            .with_flow(Flow::TwoPhaseMin)
            .with_derivative()
            .with_simulation();
        let json = serde_json::to_string(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn suite_rejects_duplicates_and_empty() {
        assert!(Suite::new("empty", Vec::new()).validate().is_err());
        let twice = Suite::new("dup", vec![pc_scenario(), pc_scenario()]);
        assert!(twice.validate().is_err());
        let ok = Suite::new("ok", vec![pc_scenario()]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation_mode_resolves_flag_and_legacy_alias() {
        let none = pc_scenario();
        assert_eq!(none.resolved_validation().unwrap(), None);
        let explicit = pc_scenario().with_validation(ValidationMode::Sim);
        assert_eq!(
            explicit.resolved_validation().unwrap(),
            Some(ValidationMode::Sim)
        );
        assert!(explicit.validate().is_ok());
        let legacy = pc_scenario().with_simulation();
        assert_eq!(
            legacy.resolved_validation().unwrap(),
            Some(ValidationMode::Sim)
        );
        let mut unknown = pc_scenario();
        unknown.validate = Some("telepathy".to_string());
        assert!(unknown.resolved_validation().is_err());
        assert!(unknown.validate().is_err());
        assert!(ValidationMode::parse("sim").is_ok());
        assert_eq!(ValidationMode::Sim.to_string(), "sim");
    }

    #[test]
    fn scenario_defaults_are_joint_paper_options() {
        let scenario = pc_scenario();
        assert_eq!(scenario.resolved_flow().unwrap(), Flow::Joint);
        let options = scenario.resolved_options();
        assert!(options.storage_weight_scale < options.budget_weight_scale);
    }
}
