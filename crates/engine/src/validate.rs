//! The post-solve validation stage: replay every solved mapping on the
//! discrete-event simulator and grade it against the solver's guarantees.
//!
//! Validation runs *after* a suite's solves have been assembled into a
//! [`SuiteOutcome`]: every feasible point of a scenario that requests
//! validation (`validate: "sim"`, or all scenarios under
//! [`RunSettings::validate_all`]) becomes one replay task. Tasks are
//! claimed off an atomic cursor — by scoped threads or by the parked
//! [`Engine`](crate::Engine) workers, exactly like expansion chunks — and
//! their results land in slots pre-addressed by (scenario, point) index.
//! A replay is a pure function of (configuration, budgets, capacities,
//! iterations), so validation outcomes, and the [`ValidationReport`] built
//! from them, are byte-identical across worker counts, schedulers and
//! executors.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use crate::executor::{RunSettings, SuiteOutcome};
use bbs_scheduler_sim::{validate_mapping, SimulationSettings};
use bbs_taskgraph::{BufferRef, Configuration, TaskRef};
use serde::{Deserialize, Serialize};

/// The validation attached to one solved point: the replay's verdict on
/// the mapping's throughput and buffer guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct PointValidation {
    /// Worst measured steady-state period across all tasks (infinite when
    /// the replay failed).
    pub measured_period: f64,
    /// Largest period requirement of the configuration.
    pub required_period: f64,
    /// Transient slack granted on top of the requirement (one
    /// replenishment interval amortised over the measured iterations).
    pub tolerance: f64,
    /// Every task met its graph's period requirement within the tolerance.
    pub period_ok: bool,
    /// Buffers whose fill level the replay observed.
    pub buffers_checked: u64,
    /// Buffers whose observed high-water mark exceeded the computed
    /// capacity.
    pub buffer_violations: u64,
    /// Why the replay itself failed, when it did (a deadlocked or
    /// mis-mapped configuration is itself a violation).
    pub detail: Option<String>,
}

impl PointValidation {
    /// Whether the replay confirms the mapping's guarantees.
    pub fn is_sound(&self) -> bool {
        self.period_ok && self.buffer_violations == 0
    }
}

/// One replay to perform: the scenario's shared base configuration plus
/// the solved mapping's budgets and capacities, addressed back to its
/// (scenario, point) slot.
struct ReplayTask {
    scenario_index: usize,
    point_index: usize,
    configuration: Arc<Configuration>,
    budgets: BTreeMap<TaskRef, u64>,
    capacities: BTreeMap<BufferRef, u64>,
}

/// The validation work of one suite outcome: replay tasks claimed off an
/// atomic cursor, results slot-addressed by (scenario, point) index — the
/// same discipline solving and expansion use, so validation outcomes are
/// ordered by the suite alone, never by who replayed what.
pub(crate) struct ValidationJob {
    tasks: Vec<ReplayTask>,
    cursor: AtomicUsize,
    iterations: usize,
}

impl ValidationJob {
    /// Collects the replay tasks of `outcome`: every feasible point of
    /// every scenario that requests validation (all scenarios under
    /// [`RunSettings::validate_all`]). Infeasible points have nothing to
    /// replay and are skipped — they are the solver's verdict, not the
    /// simulator's.
    pub(crate) fn from_outcome(outcome: &SuiteOutcome, settings: &RunSettings) -> Self {
        let mut tasks = Vec::new();
        for (scenario_index, scenario) in outcome.scenarios.iter().enumerate() {
            let requested = settings.validate_all
                || scenario
                    .scenario
                    .resolved_validation()
                    .ok()
                    .flatten()
                    .is_some();
            if !requested {
                continue;
            }
            // One shared base per scenario; capacity caps are solver
            // constraints the simulator never reads, so the uncapped base
            // stands in for every sweep point.
            let configuration = Arc::new(scenario.configuration.clone());
            for (point_index, point) in scenario.points.iter().enumerate() {
                let Ok(mapping) = &point.result else { continue };
                tasks.push(ReplayTask {
                    scenario_index,
                    point_index,
                    configuration: Arc::clone(&configuration),
                    budgets: mapping.budgets().collect(),
                    capacities: mapping.capacities().collect(),
                });
            }
        }
        Self {
            tasks,
            cursor: AtomicUsize::new(0),
            iterations: settings.simulation_iterations,
        }
    }

    /// Number of replays — the useful parallelism of this validation.
    pub(crate) fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// One worker's validation loop: claim the next replay off the cursor,
    /// run it, send the verdict home labelled with its slot coordinates.
    pub(crate) fn drain(&self, sender: &mpsc::Sender<(usize, usize, PointValidation)>) {
        loop {
            let index = self.cursor.fetch_add(1, Ordering::Relaxed);
            let Some(task) = self.tasks.get(index) else {
                break;
            };
            let validation = replay_guarded(task, self.iterations);
            // The receiver lives until collection is done; a send failure
            // means the submitting thread panicked already.
            let _ = sender.send((task.scenario_index, task.point_index, validation));
        }
    }

    /// Single-threaded validation, used below two useful workers.
    pub(crate) fn drain_serial(&self, sender: &mpsc::Sender<(usize, usize, PointValidation)>) {
        self.drain(sender);
    }

    /// Attaches drained verdicts to their pre-addressed points.
    pub(crate) fn apply(
        outcome: &mut SuiteOutcome,
        receiver: mpsc::Receiver<(usize, usize, PointValidation)>,
    ) {
        for (scenario_index, point_index, validation) in receiver {
            outcome.scenarios[scenario_index].points[point_index].validation = Some(validation);
        }
    }
}

/// Replays one task behind a panic boundary: a panicking replay becomes a
/// deterministic unsound verdict on that point, never a lost suite.
fn replay_guarded(task: &ReplayTask, iterations: usize) -> PointValidation {
    let settings = SimulationSettings {
        iterations,
        ..SimulationSettings::default()
    };
    match catch_unwind(AssertUnwindSafe(|| {
        validate_mapping(
            &task.configuration,
            &task.budgets,
            &task.capacities,
            &settings,
        )
    })) {
        Ok(validation) => PointValidation {
            measured_period: validation.measured_period,
            required_period: validation.required_period,
            tolerance: validation.tolerance,
            period_ok: validation.period_ok(),
            buffers_checked: validation.buffer_checks.len() as u64,
            buffer_violations: validation.buffer_violations(),
            detail: validation.error.map(|e| e.to_string()),
        },
        Err(_) => PointValidation {
            measured_period: f64::INFINITY,
            required_period: 0.0,
            tolerance: 0.0,
            period_ok: false,
            buffers_checked: 0,
            buffer_violations: 0,
            detail: Some("replay panicked".to_string()),
        },
    }
}

/// Runs the validation stage on scoped threads (the fresh-executor
/// counterpart of [`Engine`](crate::Engine)'s pooled stage): replays every
/// requested feasible point of `outcome` and attaches the verdicts.
///
/// Scenarios request validation with `validate: "sim"`;
/// [`RunSettings::validate_all`] replays every scenario regardless (the
/// `bbs validate` subcommand). Verdicts are pure functions of the solved
/// mappings, so the annotated outcome — and any report built from it — is
/// byte-identical across `jobs` counts.
pub fn validate_outcome(outcome: &mut SuiteOutcome, settings: &RunSettings) {
    let job = ValidationJob::from_outcome(outcome, settings);
    if job.task_count() == 0 {
        return;
    }
    let jobs = settings.jobs.max(1).min(job.task_count());
    let (sender, receiver) = mpsc::channel();
    if jobs <= 1 {
        job.drain_serial(&sender);
        drop(sender);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let sender = sender.clone();
                let job = &job;
                scope.spawn(move || job.drain(&sender));
            }
            drop(sender);
        });
    }
    ValidationJob::apply(outcome, receiver);
}

/// The deterministic summary document of one validation run: per point,
/// the solver's verdict and the replay's. Built by
/// [`ValidationReport::from_outcome`] after a run with validation;
/// serialises to pretty JSON (`bbs validate --json`) and renders the
/// human summary `bbs validate` prints. Contains no wall-clock data, so
/// it is byte-identical across worker counts, schedulers and executors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Report schema version (shared with
    /// [`SCHEMA_VERSION`](crate::report::SCHEMA_VERSION)).
    pub schema_version: u64,
    /// Name of the validated suite.
    pub suite: String,
    /// One entry per scenario, in suite order.
    pub scenarios: Vec<ScenarioValidationReport>,
}

/// One scenario's slice of a [`ValidationReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioValidationReport {
    /// Name of the scenario.
    pub scenario: String,
    /// One entry per sweep point, in sweep order.
    pub points: Vec<PointValidationReport>,
}

/// One point's validation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointValidationReport {
    /// The capacity cap of the sweep point (`None` for single solves).
    pub capacity_cap: Option<u64>,
    /// Whether the solve was feasible (infeasible points have nothing to
    /// replay).
    pub feasible: bool,
    /// Worst measured period, when the point was replayed.
    pub measured_period: Option<f64>,
    /// The period requirement the measurement is graded against.
    pub required_period: Option<f64>,
    /// Whether every task met its period requirement.
    pub period_ok: Option<bool>,
    /// Buffers whose fill level the replay observed.
    pub buffers_checked: Option<u64>,
    /// Buffers whose high-water mark exceeded the computed capacity.
    pub buffer_violations: Option<u64>,
    /// Replay failure detail, when the simulation itself could not
    /// complete.
    pub detail: Option<String>,
}

impl PointValidationReport {
    /// Violations this point contributes: one for a missed period (or
    /// failed replay) plus one per overflowed buffer.
    fn violations(&self) -> u64 {
        let period = match self.period_ok {
            Some(false) => 1,
            _ => 0,
        };
        period + self.buffer_violations.unwrap_or(0)
    }
}

impl ValidationReport {
    /// Builds the report from an outcome annotated by the validation
    /// stage.
    pub fn from_outcome(outcome: &SuiteOutcome) -> Self {
        let scenarios = outcome
            .scenarios
            .iter()
            .map(|scenario| ScenarioValidationReport {
                scenario: scenario.scenario.name.clone(),
                points: scenario
                    .points
                    .iter()
                    .map(|point| {
                        let validation = point.validation.as_ref();
                        PointValidationReport {
                            capacity_cap: point.capacity_cap,
                            feasible: point.result.is_ok(),
                            measured_period: validation.map(|v| v.measured_period),
                            required_period: validation.map(|v| v.required_period),
                            period_ok: validation.map(|v| v.period_ok),
                            buffers_checked: validation.map(|v| v.buffers_checked),
                            buffer_violations: validation.map(|v| v.buffer_violations),
                            detail: validation.and_then(|v| v.detail.clone()),
                        }
                    })
                    .collect(),
            })
            .collect();
        Self {
            schema_version: crate::report::SCHEMA_VERSION,
            suite: outcome.suite.clone(),
            scenarios,
        }
    }

    /// Points that were actually replayed.
    pub fn validated_points(&self) -> u64 {
        self.scenarios
            .iter()
            .flat_map(|s| &s.points)
            .filter(|p| p.period_ok.is_some())
            .count() as u64
    }

    /// Total violations across the suite: missed periods, failed replays
    /// and overflowed buffers.
    pub fn violations(&self) -> u64 {
        self.scenarios
            .iter()
            .flat_map(|s| &s.points)
            .map(PointValidationReport::violations)
            .sum()
    }

    /// Serialises the report as pretty JSON with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("validation report serializes");
        text.push('\n');
        text
    }

    /// Parses a report back from [`ValidationReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the JSON parser's message on malformed input.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Renders the deterministic human summary `bbs validate` prints: one
    /// line per scenario, one line per violation, one total line. No
    /// wall-clock data — byte-identical across worker counts and
    /// executors.
    pub fn render_summary(&self) -> String {
        let mut lines = Vec::new();
        lines.push(format!("validation summary for suite `{}`", self.suite));
        let mut total_points = 0u64;
        for scenario in &self.scenarios {
            let points = scenario.points.len() as u64;
            total_points += points;
            let feasible = scenario.points.iter().filter(|p| p.feasible).count();
            let validated = scenario
                .points
                .iter()
                .filter(|p| p.period_ok.is_some())
                .count();
            let violations: u64 = scenario
                .points
                .iter()
                .map(PointValidationReport::violations)
                .sum();
            lines.push(format!(
                "  {}: {points} point(s), {feasible} feasible, {validated} replayed, \
                 {violations} violation(s)",
                scenario.scenario
            ));
            for point in &scenario.points {
                if point.violations() == 0 {
                    continue;
                }
                let cap = match point.capacity_cap {
                    Some(cap) => format!("cap {cap}"),
                    None => "single solve".to_string(),
                };
                if let Some(detail) = &point.detail {
                    lines.push(format!("    VIOLATION {cap}: replay failed: {detail}"));
                    continue;
                }
                if point.period_ok == Some(false) {
                    lines.push(format!(
                        "    VIOLATION {cap}: measured period {:.3} exceeds required {:.3}",
                        point.measured_period.unwrap_or(f64::INFINITY),
                        point.required_period.unwrap_or(0.0),
                    ));
                }
                if point.buffer_violations.unwrap_or(0) > 0 {
                    lines.push(format!(
                        "    VIOLATION {cap}: {} of {} buffer(s) exceeded computed capacity",
                        point.buffer_violations.unwrap_or(0),
                        point.buffers_checked.unwrap_or(0),
                    ));
                }
            }
        }
        lines.push(format!(
            "total: {total_points} point(s), {} replayed, {} violation(s)",
            self.validated_points(),
            self.violations()
        ));
        lines.join("\n") + "\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_suite;
    use crate::scenario::{Scenario, SweepSpec, ValidationMode, WorkloadSpec};
    use crate::Suite;
    use bbs_taskgraph::presets::PresetSpec;

    fn validated_suite() -> Suite {
        Suite::new(
            "validated",
            vec![Scenario::new(
                "pc",
                WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
            )
            .with_sweep(SweepSpec::list([2u64, 4]))
            .with_validation(ValidationMode::Sim)],
        )
    }

    #[test]
    fn flagged_scenarios_get_validated_and_report_sound() {
        let outcome = run_suite(&validated_suite(), &RunSettings::default()).unwrap();
        let points = &outcome.scenarios[0].points;
        assert!(points.iter().all(|p| p.validation.is_some()));
        for point in points {
            let validation = point.validation.as_ref().unwrap();
            assert!(validation.is_sound(), "unsound: {validation:?}");
            assert!(validation.measured_period.is_finite());
            assert_eq!(validation.buffers_checked, 1);
        }
        let report = ValidationReport::from_outcome(&outcome);
        assert_eq!(report.validated_points(), 2);
        assert_eq!(report.violations(), 0);
        let summary = report.render_summary();
        assert!(summary.contains("2 point(s), 2 feasible, 2 replayed, 0 violation(s)"));
        assert!(summary.ends_with("0 violation(s)\n"));
    }

    #[test]
    fn unflagged_scenarios_are_skipped_unless_validate_all() {
        let suite = Suite::new(
            "plain",
            vec![Scenario::new(
                "pc",
                WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
            )
            .with_sweep(SweepSpec::list([2u64]))],
        );
        let outcome = run_suite(&suite, &RunSettings::default()).unwrap();
        assert!(outcome.scenarios[0].points[0].validation.is_none());

        let settings = RunSettings {
            validate_all: true,
            ..RunSettings::default()
        };
        let outcome = run_suite(&suite, &settings).unwrap();
        assert!(outcome.scenarios[0].points[0].validation.is_some());
    }

    #[test]
    fn validation_report_round_trips_and_is_jobs_independent() {
        let settings_serial = RunSettings {
            validate_all: true,
            ..RunSettings::default()
        };
        let settings_parallel = RunSettings {
            validate_all: true,
            jobs: 4,
            ..RunSettings::default()
        };
        let serial = run_suite(&validated_suite(), &settings_serial).unwrap();
        let parallel = run_suite(&validated_suite(), &settings_parallel).unwrap();
        let report_serial = ValidationReport::from_outcome(&serial);
        let report_parallel = ValidationReport::from_outcome(&parallel);
        assert_eq!(report_serial.to_json(), report_parallel.to_json());
        assert_eq!(
            report_serial.render_summary(),
            report_parallel.render_summary()
        );
        let back = ValidationReport::from_json(&report_serial.to_json()).unwrap();
        assert_eq!(back, report_serial);
        assert!(ValidationReport::from_json("{broken").is_err());
    }
}
