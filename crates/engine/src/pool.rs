//! The reusable engine: a persistent worker pool that runs suites without
//! re-spawning threads.
//!
//! [`run_suite`](crate::run_suite) spawns its workers per call and joins
//! them before returning — correct, but a caller that runs suites in a loop
//! (benchmarks, servers, sweep drivers) pays thread spawn/teardown on every
//! run. An [`Engine`] spawns its workers once; between runs they park on an
//! idle channel receive (no spinning, no wakeups), and a run hands each of
//! them an assignment naming the shared job state. Scheduling inside a
//! run is *identical* to the scoped executor — the same sharded deques,
//! steal order, panic boundary and slot-addressed collection, literally the
//! same drain loop — so pooled and per-run execution produce
//! byte-identical reports (test- and CI-asserted).
//!
//! The job state is reference-counted (`Arc`) because pool workers outlive
//! any single run's stack frame; that is also why the cache parameter is an
//! `Arc<SolveCache>` here where the scoped executor borrows one.
//!
//! # Example
//!
//! ```
//! use bbs_engine::suites::smoke_suite;
//! use bbs_engine::{Engine, RunSettings, SolveCache};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(4);
//! let cache = Arc::new(SolveCache::new());
//! let settings = RunSettings::with_jobs(4);
//! // Two runs over the same pool: the second re-uses both the parked
//! // worker threads and the shared cache (zero fresh solves).
//! let first = engine
//!     .run_suite_with_cache(&smoke_suite(), &settings, &cache)
//!     .unwrap();
//! let second = engine
//!     .run_suite_with_cache(&smoke_suite(), &settings, &cache)
//!     .unwrap();
//! assert_eq!(second.cache.misses, first.cache.misses, "no new solves");
//! ```

use crate::cache::{CacheStats, SolveCache};
use crate::cancel::CancelToken;
use crate::error::EngineError;
use crate::executor::{
    assemble_outcome, drain_worker, plan, shard_items, DrainContext, ExpansionJob,
    ExpansionSummary, PointOutcome, PoolCounters, ResolvedScenario, RunSettings, SuiteOutcome,
    WorkItem,
};
use crate::scenario::Suite;
use crate::validate::{PointValidation, ValidationJob};
use std::collections::{HashSet, VecDeque};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Everything the workers of one run share: the sharded work items, the
/// scheduler counters, and the run configuration.
struct JobState {
    shards: Vec<Mutex<VecDeque<WorkItem>>>,
    counters: PoolCounters,
    settings: RunSettings,
    injection_target: Option<(usize, usize)>,
    stall_target: Option<(usize, usize)>,
    cache: Arc<SolveCache>,
    cancel: CancelToken,
}

/// One unit of work handed to a parked worker. Both phases of a run flow
/// through the same inbox: first the (optional) parallel expansion of the
/// suite's sweeps into work items, then the solve drain over the sharded
/// items. In each case, dropping the results sender when the loop retires
/// is what tells the submitting thread this worker is done.
enum Assignment {
    /// Claim expansion chunks off the shared cursor and send the minted
    /// work items home.
    Expand {
        job: Arc<ExpansionJob>,
        results: mpsc::Sender<(usize, Vec<WorkItem>)>,
    },
    /// Drain the sharded work items (pop local, steal when dry).
    Solve {
        job: Arc<JobState>,
        home: usize,
        results: mpsc::Sender<(usize, usize, PointOutcome)>,
    },
    /// Claim replay tasks off the validation cursor and send the verdicts
    /// home slot-addressed.
    Validate {
        job: Arc<ValidationJob>,
        results: mpsc::Sender<(usize, usize, PointValidation)>,
    },
}

/// One pool worker: its assignment channel plus the join handle. The
/// sender is an `Option` only so `Drop` can close the channel (waking the
/// parked worker into a clean exit) before joining.
struct Worker {
    assignments: Option<mpsc::Sender<Assignment>>,
    thread: Option<JoinHandle<()>>,
}

/// A reusable batch engine: `workers` threads, spawned once, parked between
/// runs, reused by every [`Engine::run_suite`] call. See the
/// [module docs](self).
pub struct Engine {
    workers: Vec<Worker>,
}

impl Engine {
    /// Spawns a pool of `workers` threads (clamped to at least 1). The
    /// threads park immediately and cost nothing until a run is submitted.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let workers = (0..workers)
            .map(|index| {
                let (assignments, inbox) = mpsc::channel::<Assignment>();
                let thread = std::thread::Builder::new()
                    .name(format!("bbs-engine-{index}"))
                    .spawn(move || {
                        // Parked here between runs; exits when the Engine
                        // drops its sender.
                        while let Ok(assignment) = inbox.recv() {
                            match assignment {
                                Assignment::Expand { job, results } => {
                                    job.drain(&results);
                                    // `results` drops here: one retired
                                    // expander.
                                }
                                Assignment::Solve { job, home, results } => {
                                    let context = DrainContext {
                                        shards: &job.shards,
                                        settings: &job.settings,
                                        injection_target: job.injection_target,
                                        stall_target: job.stall_target,
                                        cache: &job.cache,
                                        counters: &job.counters,
                                        cancel: &job.cancel,
                                    };
                                    drain_worker(home, &context, &results);
                                    // `results` drops here: one retired
                                    // worker.
                                }
                                Assignment::Validate { job, results } => {
                                    job.drain(&results);
                                    // `results` drops here: one retired
                                    // validator.
                                }
                            }
                        }
                    })
                    .expect("spawning an engine worker thread");
                Worker {
                    assignments: Some(assignments),
                    thread: Some(thread),
                }
            })
            .collect();
        Self { workers }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs a whole suite on the pooled workers with a fresh solve cache.
    /// `settings.jobs` is honoured up to the pool size.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] when the suite fails validation;
    /// solver-level failures are *data* (recorded per point), not errors.
    pub fn run_suite(
        &self,
        suite: &Suite,
        settings: &RunSettings,
    ) -> Result<SuiteOutcome, EngineError> {
        self.run_suite_with_cache(suite, settings, &Arc::new(SolveCache::new()))
    }

    /// Runs a whole suite on the pooled workers against a caller-owned
    /// (shared) [`SolveCache`], so repeated runs skip redundant solves. The
    /// outcome's counters are the cache's cumulative totals.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_suite`].
    pub fn run_suite_with_cache(
        &self,
        suite: &Suite,
        settings: &RunSettings,
        cache: &Arc<SolveCache>,
    ) -> Result<SuiteOutcome, EngineError> {
        let start = Instant::now();
        let planned = plan(suite, settings)?;
        let items = self.expand(planned.expansion, settings.jobs.max(1));
        Ok(self.solve_items(
            suite,
            planned.resolved,
            items,
            planned.injection_target,
            planned.stall_target,
            settings,
            cache,
            &CancelToken::new(),
            start,
        ))
    }

    /// Runs one suite *submission* against the shared pool and cache tiers —
    /// the entry point of server-style callers (see
    /// [`serve`](crate::serve)), where one long-lived cache outlives many
    /// submissions.
    ///
    /// The difference from [`Engine::run_suite_with_cache`] is the cache
    /// accounting: instead of the shared cache's *cumulative* totals, the
    /// outcome carries **submission-local** counters derived from the suite
    /// alone — `misses` is the number of distinct solve keys this suite
    /// expands to, `hits` the number of repeated lookups within it. Those
    /// are exactly the counters a cold fresh-cache run of the same suite
    /// reports, so the report of a submission is byte-identical to `bbs run`
    /// of the same suite **no matter how warm the shared tiers are** — the
    /// determinism carve-out the service's `cmp` gates rely on. What the
    /// shared tiers actually answered stays observable in the outcome's
    /// `store` counters and per-point [`SolveSource`](crate::SolveSource)s
    /// (timing-summary data, never part of the report).
    ///
    /// # Errors
    ///
    /// See [`Engine::run_suite`].
    pub fn submit(
        &self,
        suite: &Suite,
        settings: &RunSettings,
        cache: &Arc<SolveCache>,
    ) -> Result<SuiteOutcome, EngineError> {
        self.submit_with_cancel(suite, settings, cache, &CancelToken::new())
    }

    /// [`Engine::submit`] with cooperative cancellation: when `cancel`
    /// fires, every worker draining this submission retires its remaining
    /// items unsolved (the item already executing finishes — abort within
    /// one work item per worker), the validation stage is skipped, and the
    /// call returns [`EngineError::Cancelled`] instead of an outcome.
    ///
    /// Cancellation is *observation-only* for everything shared: solves
    /// that completed before the token fired stay cached (and stored), so
    /// concurrent and later submissions are unaffected — their reports stay
    /// byte-identical to solo runs.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] when the token fired before the run
    /// completed; otherwise see [`Engine::run_suite`].
    pub fn submit_with_cancel(
        &self,
        suite: &Suite,
        settings: &RunSettings,
        cache: &Arc<SolveCache>,
        cancel: &CancelToken,
    ) -> Result<SuiteOutcome, EngineError> {
        let start = Instant::now();
        let planned = plan(suite, settings)?;
        if cancel.is_cancelled() {
            // Cancelled while still queued: skip the expansion too.
            return Err(EngineError::Cancelled);
        }
        let items = self.expand(planned.expansion, settings.jobs.max(1));
        let mut distinct = HashSet::with_capacity(items.len());
        let mut misses = 0u64;
        for item in &items {
            if distinct.insert(item.key()) {
                misses += 1;
            }
        }
        let hits = items.len() as u64 - misses;
        let mut outcome = self.solve_items(
            suite,
            planned.resolved,
            items,
            planned.injection_target,
            planned.stall_target,
            settings,
            cache,
            cancel,
            start,
        );
        if cancel.is_cancelled() {
            return Err(EngineError::Cancelled);
        }
        if settings.use_cache {
            outcome.cache = CacheStats { hits, misses };
        }
        Ok(outcome)
    }

    /// The shared solve phase behind [`Engine::run_suite_with_cache`] and
    /// [`Engine::submit`]: shard the expanded items, hand every
    /// participating parked worker a solve assignment, and assemble the
    /// outcome in suite order.
    #[allow(clippy::too_many_arguments)] // two call sites, all distinct state
    fn solve_items(
        &self,
        suite: &Suite,
        resolved: Vec<ResolvedScenario>,
        items: Vec<WorkItem>,
        injection_target: Option<(usize, usize)>,
        stall_target: Option<(usize, usize)>,
        settings: &RunSettings,
        cache: &Arc<SolveCache>,
        cancel: &CancelToken,
        start: Instant,
    ) -> SuiteOutcome {
        let jobs = settings
            .jobs
            .max(1)
            .min(self.workers.len())
            .min(items.len().max(1));
        let job = Arc::new(JobState {
            shards: shard_items(items, jobs, settings.steal),
            counters: PoolCounters::default(),
            settings: settings.clone(),
            injection_target,
            stall_target,
            cache: Arc::clone(cache),
            cancel: cancel.clone(),
        });
        let (sender, receiver) = mpsc::channel::<(usize, usize, PointOutcome)>();
        for (home, worker) in self.workers.iter().take(jobs).enumerate() {
            worker
                .assignments
                .as_ref()
                .expect("pool is alive while the engine exists")
                .send(Assignment::Solve {
                    job: Arc::clone(&job),
                    home,
                    results: sender.clone(),
                })
                .expect("engine worker thread is alive");
        }
        drop(sender);
        let mut outcome = assemble_outcome(
            suite,
            resolved,
            receiver,
            settings,
            &job.cache,
            &job.counters,
            jobs,
            start,
        );
        // The validation stage replays solved mappings after assembly, on
        // the same parked workers; the wall clock covers it, the report
        // never does. A cancelled run skips it: its outcome is discarded
        // anyway, and replays would keep the pool busy after the abort.
        if !cancel.is_cancelled() {
            self.validate(&mut outcome, settings);
        }
        outcome.wall_time = start.elapsed();
        outcome
    }

    /// Runs the validation stage on the parked workers: replays every
    /// requested feasible point of `outcome` and attaches the verdicts.
    /// The pooled counterpart of
    /// [`validate_outcome`](crate::validate::validate_outcome) — same
    /// cursor, same slot-addressed collection, byte-identical results.
    fn validate(&self, outcome: &mut SuiteOutcome, settings: &RunSettings) {
        let job = ValidationJob::from_outcome(outcome, settings);
        if job.task_count() == 0 {
            return;
        }
        let jobs = settings
            .jobs
            .max(1)
            .min(self.workers.len())
            .min(job.task_count());
        let (sender, receiver) = mpsc::channel();
        if jobs <= 1 {
            job.drain_serial(&sender);
            drop(sender);
        } else {
            let job = Arc::new(job);
            for worker in self.workers.iter().take(jobs) {
                worker
                    .assignments
                    .as_ref()
                    .expect("pool is alive while the engine exists")
                    .send(Assignment::Validate {
                        job: Arc::clone(&job),
                        results: sender.clone(),
                    })
                    .expect("engine worker thread is alive");
            }
            drop(sender);
        }
        ValidationJob::apply(outcome, receiver);
    }

    /// Resolves and expands `suite` on the pooled workers — the exact
    /// pipeline stage [`Engine::run_suite`] performs before solving —
    /// and reports the counts without solving anything. The pooled
    /// counterpart of [`expand_suite`](crate::executor::expand_suite),
    /// used by the expansion benchmarks and diagnostics.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] when the suite fails validation.
    pub fn expand_suite(
        &self,
        suite: &Suite,
        settings: &RunSettings,
    ) -> Result<ExpansionSummary, EngineError> {
        let planned = plan(suite, settings)?;
        let scenarios = planned.resolved.len();
        let items = self.expand(planned.expansion, settings.jobs.max(1));
        Ok(ExpansionSummary {
            scenarios,
            points: items.len(),
        })
    }

    /// Runs one [`ExpansionJob`] on up to `jobs` parked workers, falling
    /// back to in-place serial expansion when a single thread would do.
    /// Chunk-ordered collection makes the item list identical either way.
    fn expand(&self, job: ExpansionJob, jobs: usize) -> Vec<WorkItem> {
        let jobs = jobs.min(self.workers.len()).min(job.chunk_count());
        if jobs <= 1 {
            return job.expand_serial();
        }
        let job = Arc::new(job);
        let (sender, receiver) = mpsc::channel::<(usize, Vec<WorkItem>)>();
        for worker in self.workers.iter().take(jobs) {
            worker
                .assignments
                .as_ref()
                .expect("pool is alive while the engine exists")
                .send(Assignment::Expand {
                    job: Arc::clone(&job),
                    results: sender.clone(),
                })
                .expect("engine worker thread is alive");
        }
        drop(sender);
        job.collect(receiver)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the assignment channels wakes every parked worker into a
        // clean exit; then join so no thread outlives the pool.
        for worker in &mut self.workers {
            worker.assignments.take();
        }
        for worker in &mut self.workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_suite, PanicInjection};
    use crate::scenario::{Scenario, SweepSpec, WorkloadSpec};
    use crate::suites::smoke_suite;
    use crate::SuiteReport;
    use bbs_taskgraph::presets::PresetSpec;

    fn pc_sweep_scenario(name: &str) -> Scenario {
        Scenario::new(
            name,
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
        )
        .with_sweep(SweepSpec::range(1, 6))
    }

    #[test]
    fn pooled_reports_match_the_scoped_executor() {
        let suite = Suite::new("pool", vec![pc_sweep_scenario("a"), pc_sweep_scenario("b")]);
        let engine = Engine::new(8);
        for (jobs, steal) in [(1, true), (8, true), (8, false)] {
            let settings = RunSettings {
                jobs,
                steal,
                ..RunSettings::default()
            };
            let scoped = SuiteReport::from_outcome(&run_suite(&suite, &settings).unwrap());
            let pooled = SuiteReport::from_outcome(&engine.run_suite(&suite, &settings).unwrap());
            assert_eq!(
                scoped.to_json(),
                pooled.to_json(),
                "jobs={jobs} steal={steal}"
            );
        }
    }

    #[test]
    fn one_pool_serves_many_runs_and_shares_the_cache() {
        let engine = Engine::new(4);
        let cache = Arc::new(SolveCache::new());
        let settings = RunSettings::with_jobs(4);
        let suite = Suite::new("repeat", vec![pc_sweep_scenario("pc")]);
        let first = engine
            .run_suite_with_cache(&suite, &settings, &cache)
            .unwrap();
        assert_eq!(first.cache.misses, 6);
        let second = engine
            .run_suite_with_cache(&suite, &settings, &cache)
            .unwrap();
        assert_eq!(second.cache.misses, 6, "no new solves on the second run");
        assert_eq!(second.cache.hits, 6);
    }

    #[test]
    fn submit_reports_submission_local_counters_on_a_warm_shared_cache() {
        use crate::cache::SolveSource;
        let engine = Engine::new(4);
        let cache = Arc::new(SolveCache::new());
        let settings = RunSettings::with_jobs(4);
        let suite = Suite::new("served", vec![pc_sweep_scenario("pc")]);
        let cold = engine.submit(&suite, &settings, &cache).unwrap();
        let warm = engine.submit(&suite, &settings, &cache).unwrap();
        // Submission-local accounting: 6 distinct keys, no repeats — the
        // same counters whether the shared tiers were cold or warm.
        assert_eq!(cold.cache, CacheStats { hits: 0, misses: 6 });
        assert_eq!(warm.cache, cold.cache);
        // And therefore byte-identical reports, including against a cold
        // one-shot run.
        let reference = SuiteReport::from_outcome(&run_suite(&suite, &settings).unwrap());
        assert_eq!(
            SuiteReport::from_outcome(&cold).to_json(),
            reference.to_json()
        );
        assert_eq!(
            SuiteReport::from_outcome(&warm).to_json(),
            reference.to_json()
        );
        // The shared tiers really did answer the warm submission.
        assert!(warm.scenarios[0]
            .points
            .iter()
            .all(|p| p.source == SolveSource::Memory));
    }

    #[test]
    fn submit_counts_repeated_keys_within_a_submission_as_hits() {
        let engine = Engine::new(2);
        let cache = Arc::new(SolveCache::new());
        let settings = RunSettings::with_jobs(2);
        // Two identical scenarios: six distinct keys, six repeats — exactly
        // what a cold fresh-cache run of the same suite reports.
        let suite = Suite::new(
            "dupes",
            vec![pc_sweep_scenario("first"), pc_sweep_scenario("second")],
        );
        let outcome = engine.submit(&suite, &settings, &cache).unwrap();
        assert_eq!(outcome.cache, CacheStats { hits: 6, misses: 6 });
        let reference = run_suite(&suite, &settings).unwrap();
        assert_eq!(outcome.cache, reference.cache);
    }

    #[test]
    fn jobs_beyond_the_pool_size_are_clamped() {
        let engine = Engine::new(2);
        let outcome = engine
            .run_suite(
                &Suite::new("clamp", vec![pc_sweep_scenario("pc")]),
                &RunSettings::with_jobs(64),
            )
            .unwrap();
        assert_eq!(outcome.executor.workers, 2);
        assert!(outcome.unexpected_failures().is_empty());
    }

    #[test]
    fn pooled_panic_injection_is_a_per_point_error_and_the_pool_survives() {
        let engine = Engine::new(4);
        let suite = Suite::new("faulted", vec![pc_sweep_scenario("a")]);
        let settings = RunSettings {
            jobs: 4,
            inject_panic: Some(PanicInjection {
                scenario: "a".to_string(),
                capacity_cap: Some(3),
            }),
            ..RunSettings::default()
        };
        let outcome = engine.run_suite(&suite, &settings).unwrap();
        assert_eq!(outcome.executor.caught_panics, 1);
        assert_eq!(outcome.unexpected_failures().len(), 1);
        // The same pool keeps working after catching a panic.
        let healthy = engine
            .run_suite(&smoke_suite(), &RunSettings::with_jobs(4))
            .unwrap();
        assert!(healthy.unexpected_failures().is_empty());
    }

    #[test]
    fn invalid_suites_error_without_touching_the_pool() {
        let engine = Engine::new(2);
        let empty = Suite::new("empty", Vec::new());
        assert!(engine.run_suite(&empty, &RunSettings::default()).is_err());
        // Still healthy.
        let outcome = engine
            .run_suite(&smoke_suite(), &RunSettings::default())
            .unwrap();
        assert!(outcome.unexpected_failures().is_empty());
    }
}
