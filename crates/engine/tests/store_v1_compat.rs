//! Backwards compatibility of the persistent store: a checked-in store
//! tree written by the v1 (plain JSON) format must keep serving warm
//! replays through the v2 code path with zero fresh solves, and
//! `recompress` must migrate it in place without changing any report.

use bbs_engine::suites::smoke_suite;
use bbs_engine::{run_suite_with_cache, RunSettings, SolveCache, SolveStore, SuiteReport};
use std::fs;
use std::path::{Path, PathBuf};

/// A unique, self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bbs-v1-compat-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Copies the checked-in v1 fixture tree into a scratch directory, so the
/// test can mutate (recompress) it freely.
fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &target);
        } else {
            fs::copy(entry.path(), &target).unwrap();
        }
    }
}

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1_store")
}

#[test]
fn v1_store_trees_replay_warm_and_recompress_in_place() {
    let directory = TempDir::new("replay");
    copy_tree(&fixture_root(), directory.path());
    let settings = RunSettings::default();
    let suite = smoke_suite();

    // The fixture was written by the v1 format: all entries plain JSON.
    let store = SolveStore::open_existing(directory.path()).unwrap();
    let before = store.summary().unwrap();
    assert_eq!(before.entries, 8, "fixture covers the whole smoke suite");
    assert_eq!(before.v1_entries, 8);
    assert_eq!(before.v2_entries, 0);

    // Warm replay through the v2 code path: every solve is a disk hit.
    let cache = SolveCache::with_store(store);
    let outcome = run_suite_with_cache(&suite, &settings, &cache).unwrap();
    let stats = cache.store().unwrap().stats();
    assert_eq!(stats.fresh_solves, 0, "a v1 store must stay fully warm");
    assert_eq!(stats.disk_hits, 8);
    assert_eq!(stats.rejected, 0);
    let replayed = SuiteReport::from_outcome(&outcome).to_json();

    // Migrate in place: every v1 entry becomes a v2 container, none lost.
    let store = SolveStore::open_existing(directory.path()).unwrap();
    let migrated = store.recompress().unwrap();
    assert_eq!(migrated.migrated, 8);
    assert_eq!(migrated.already_current, 0);
    assert_eq!(migrated.corrupt, 0);
    assert_eq!(migrated.failed, 0);
    let after = store.summary().unwrap();
    assert_eq!(after.entries, 8);
    assert_eq!(after.v1_entries, 0);
    assert_eq!(after.v2_entries, 8);
    // The bodies are preserved verbatim, so the logical content is
    // unchanged even though the on-disk representation moved.
    assert_eq!(after.logical_bytes, before.logical_bytes);

    // The migrated store is still fully warm and reports byte-identically.
    let cache = SolveCache::with_store(SolveStore::open_existing(directory.path()).unwrap());
    let outcome = run_suite_with_cache(&suite, &settings, &cache).unwrap();
    let stats = cache.store().unwrap().stats();
    assert_eq!(stats.fresh_solves, 0, "recompression must not evict");
    assert_eq!(stats.disk_hits, 8);
    assert_eq!(SuiteReport::from_outcome(&outcome).to_json(), replayed);

    // And both match a store-free run byte for byte.
    let reference = run_suite_with_cache(&suite, &settings, &SolveCache::new()).unwrap();
    assert_eq!(SuiteReport::from_outcome(&reference).to_json(), replayed);
}

#[test]
fn a_v1_entry_is_superseded_by_its_v2_rewrite() {
    let directory = TempDir::new("supersede");
    copy_tree(&fixture_root(), directory.path());

    // Evict one v1 entry's body so the next run re-solves and re-stores
    // that key — through the v2 write path.
    let store = SolveStore::open_existing(directory.path()).unwrap();
    let victim = store.entries().unwrap().remove(0);
    assert_eq!(victim.version, 1);
    fs::write(&victim.path, "{truncated garbage").unwrap();

    let cache = SolveCache::with_store(SolveStore::open_existing(directory.path()).unwrap());
    run_suite_with_cache(&smoke_suite(), &RunSettings::default(), &cache).unwrap();
    let stats = cache.store().unwrap().stats();
    assert_eq!(stats.fresh_solves, 1);
    assert_eq!(stats.stored, 1);

    // The rewrite landed in the v2 tree and removed the v1 file.
    assert!(!victim.path.exists(), "superseded v1 file must be removed");
    let summary = SolveStore::open_existing(directory.path())
        .unwrap()
        .summary()
        .unwrap();
    assert_eq!(summary.entries, 8);
    assert_eq!(summary.v1_entries, 7);
    assert_eq!(summary.v2_entries, 1);
    assert_eq!(summary.corrupt, 0);
}
