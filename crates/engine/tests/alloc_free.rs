//! Proof that hot-path cache-key construction performs zero heap
//! allocation, via a counting global allocator.
//!
//! This is the acceptance test for the streaming-key redesign: deriving a
//! sweep point's [`CacheKey`] from the scenario's hoisted
//! [`ScenarioKeySeed`] — the exact operation the executor performs per
//! point, and the *only* key work a cache hit ever does — must not allocate
//! at all. The old scheme built a `serde::Value` tree plus two `String`s
//! per point.
//!
//! The file deliberately contains a single `#[test]`: the counter is
//! process-global, and a lone test keeps the harness from running anything
//! concurrently with the measured regions. For the same reason the
//! companion assertion that *suite expansion* allocates O(scenarios), not
//! O(points), lives in its own file, `expansion_alloc.rs`.

use bbs_engine::ScenarioKeySeed;
use bbs_taskgraph::presets::{producer_consumer, PaperParameters};
use bbs_taskgraph::{canonical_digest_of, Configuration};
use budget_buffer::{with_capacity_cap, SolveOptions};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation call.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter is an atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn hot_path_key_construction_performs_zero_heap_allocation() {
    // Setup may allocate freely: resolve the workload, pre-cap the sweep
    // points, hoist the scenario seed.
    let base = producer_consumer(PaperParameters::default(), None);
    let options = SolveOptions::default().prefer_budget_minimisation();
    let capped: Vec<Configuration> = (1..=10u64)
        .map(|cap| with_capacity_cap(&base, cap))
        .collect();
    let seed = ScenarioKeySeed::new(&options, "joint");

    // Per-point key derivation — the executor's per-sweep-point hot path.
    let before = allocations();
    for configuration in &capped {
        black_box(seed.key_for(black_box(configuration)));
    }
    let key_allocations = allocations() - before;

    // The raw streaming digest underneath it.
    let before = allocations();
    for configuration in &capped {
        black_box(canonical_digest_of(black_box(configuration)));
    }
    let digest_allocations = allocations() - before;

    // Floats exercise the formatting machinery; make sure a float-heavy
    // value is covered explicitly too.
    let floats = vec![0.1f64, 1.0 / 3.0, 2.225e-308, 40.0, 1e17];
    let before = allocations();
    black_box(canonical_digest_of(black_box(&floats)));
    let float_allocations = allocations() - before;

    assert_eq!(
        key_allocations, 0,
        "seed.key_for must not allocate (10 sweep points measured)"
    );
    assert_eq!(
        digest_allocations, 0,
        "streaming canonical digests must not allocate"
    );
    assert_eq!(
        float_allocations, 0,
        "float formatting in the streaming path must not allocate"
    );
    // Sanity: the counter is actually live.
    let before = allocations();
    black_box(Vec::<u8>::with_capacity(32));
    assert!(allocations() > before, "counting allocator must be active");
}
