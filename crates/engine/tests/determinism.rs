//! Determinism guarantees of the batch engine.
//!
//! The serialisable report must be a pure function of the suite definition:
//! identical bytes across worker counts, cache settings and repeated runs.

use bbs_engine::suites::{
    gen_smoke_suite, paper_plus_suite, smoke_suite, sweep_10k_suite, SWEEP_10K_POINTS,
};
use bbs_engine::{
    generate_suite, run_suite, CacheKey, Engine, GenParams, RunSettings, Scenario, SolveCache,
    Suite, SuiteReport, SweepSpec, ValidationReport, WorkloadSpec,
};
use bbs_taskgraph::presets::PresetSpec;
use budget_buffer::{compute_mapping, with_capacity_cap, SolveOptions};
use proptest::prelude::*;

fn report_json(suite: &Suite, settings: &RunSettings) -> String {
    let outcome = run_suite(suite, settings).expect("suite runs");
    SuiteReport::from_outcome(&outcome).to_json()
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let suite = smoke_suite();
    let sequential = report_json(&suite, &RunSettings::with_jobs(1));
    for jobs in [2, 8, 16] {
        assert_eq!(
            sequential,
            report_json(&suite, &RunSettings::with_jobs(jobs)),
            "JSON reports must not depend on --jobs (jobs={jobs})"
        );
    }
}

#[test]
fn reports_are_byte_identical_across_schedulers() {
    // Steals move work between workers but never reorder results: the
    // work-stealing pool and the shared-queue baseline agree byte for byte.
    let suite = smoke_suite();
    let stealing = report_json(&suite, &RunSettings::with_jobs(8));
    let shared = report_json(
        &suite,
        &RunSettings {
            steal: false,
            ..RunSettings::with_jobs(8)
        },
    );
    assert_eq!(stealing, shared);
}

#[test]
fn reports_are_byte_identical_across_repeated_runs() {
    let suite = smoke_suite();
    let settings = RunSettings::with_jobs(4);
    assert_eq!(
        report_json(&suite, &settings),
        report_json(&suite, &settings)
    );
}

#[test]
fn reports_do_not_depend_on_the_cache() {
    let suite = smoke_suite();
    let cached = report_json(&suite, &RunSettings::default());
    let uncached = report_json(
        &suite,
        &RunSettings {
            use_cache: false,
            ..RunSettings::default()
        },
    );
    // The runs differ only in the cache section of the report.
    let strip = |json: &str| {
        json.lines()
            .filter(|l| {
                !l.contains("\"enabled\"") && !l.contains("\"hits\"") && !l.contains("\"misses\"")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&cached), strip(&uncached));
}

#[test]
fn pooled_and_per_run_executors_report_byte_identically_on_paper_plus() {
    // The full paper-plus suite through the reusable Engine pool versus the
    // scoped per-run executor, at one and at eight workers — reports must
    // be byte-identical (and the pool is reused across all four runs).
    let suite = paper_plus_suite();
    let engine = Engine::new(8);
    for jobs in [1usize, 8] {
        let settings = RunSettings::with_jobs(jobs);
        let fresh = report_json(&suite, &settings);
        let pooled =
            SuiteReport::from_outcome(&engine.run_suite(&suite, &settings).expect("suite runs"))
                .to_json();
        assert_eq!(fresh, pooled, "pooled vs fresh diverged at --jobs {jobs}");
    }
}

#[test]
fn sweep_10k_reports_are_byte_identical_across_jobs_and_executors() {
    // The 10 000-point generated sweep goes through the parallel chunked
    // expansion (20 chunks), the work-stealing drain and the slot-ordered
    // assembly; one worker versus sixteen, pooled versus per-run scoped
    // threads, the JSON report must not move by a byte. Only ten distinct
    // cache keys exist, so the suite is cheap to solve and this is really a
    // scheduling/expansion determinism test at scale.
    let suite = sweep_10k_suite();
    let baseline = report_json(&suite, &RunSettings::with_jobs(1));
    assert_eq!(
        baseline,
        report_json(&suite, &RunSettings::with_jobs(16)),
        "scoped executor diverged between --jobs 1 and --jobs 16"
    );
    let engine = Engine::new(16);
    for jobs in [1usize, 16] {
        let settings = RunSettings::with_jobs(jobs);
        let pooled =
            SuiteReport::from_outcome(&engine.run_suite(&suite, &settings).expect("suite runs"))
                .to_json();
        assert_eq!(
            baseline, pooled,
            "pooled executor diverged at --jobs {jobs}"
        );
    }
    let report = SuiteReport::from_json(&baseline).unwrap();
    assert_eq!(report.scenarios[0].points.len(), SWEEP_10K_POINTS);
    assert!(report.scenarios[0].points.iter().all(|p| p.feasible));
}

#[test]
fn suite_with_expected_infeasible_points_is_still_deterministic() {
    let suite = Suite::new(
        "edge",
        vec![Scenario::new(
            "ring-tight",
            WorkloadSpec::preset(
                PresetSpec::named("ring")
                    .with_tasks(3)
                    .with_initial_tokens(2),
            ),
        )
        .with_sweep(SweepSpec::range(1, 4))
        .expecting_infeasible()],
    );
    let sequential = report_json(&suite, &RunSettings::with_jobs(1));
    let parallel = report_json(&suite, &RunSettings::with_jobs(8));
    assert_eq!(sequential, parallel);
    let report = SuiteReport::from_json(&sequential).unwrap();
    assert!(!report.scenarios[0].points[0].feasible);
    assert!(report.scenarios[0].points[1].feasible);
}

#[test]
fn validation_summaries_are_byte_identical_across_jobs_and_executors() {
    // The `bbs validate` surface: a generated suite (every scenario carries
    // `validate: "sim"`), replayed at one, two and sixteen workers, on the
    // scoped executor and on the reusable pool — the validation report JSON
    // and the rendered summary must not move by a byte.
    let suite = gen_smoke_suite();
    let settings = |jobs| RunSettings {
        validate_all: true,
        jobs,
        ..RunSettings::default()
    };
    let baseline = ValidationReport::from_outcome(&run_suite(&suite, &settings(1)).unwrap());
    assert!(baseline.validated_points() > 0, "nothing was replayed");
    let engine = Engine::new(16);
    for jobs in [1usize, 2, 16] {
        let fresh = ValidationReport::from_outcome(&run_suite(&suite, &settings(jobs)).unwrap());
        let pooled =
            ValidationReport::from_outcome(&engine.run_suite(&suite, &settings(jobs)).unwrap());
        for (label, report) in [("fresh", &fresh), ("pooled", &pooled)] {
            assert_eq!(
                baseline.to_json(),
                report.to_json(),
                "{label} validation JSON diverged at --jobs {jobs}"
            );
            assert_eq!(
                baseline.render_summary(),
                report.render_summary(),
                "{label} summary diverged at --jobs {jobs}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // `bbs gen --seed N` must be a pure function of its parameters: equal
    // seeds produce byte-identical suite files, and every generated suite
    // passes schema validation.
    #[test]
    fn same_seed_generates_byte_identical_suites(seed in 0u64..100_000) {
        let params = GenParams { seed, points: 8 };
        let first = serde_json::to_string_pretty(&generate_suite(&params)).unwrap();
        let second = serde_json::to_string_pretty(&generate_suite(&params)).unwrap();
        prop_assert_eq!(&first, &second);
        generate_suite(&params).validate().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // A cache hit must return a mapping equal to a fresh, uncached solve —
    // over random capacity caps, weight trade-offs and chain lengths.
    #[test]
    fn cache_hit_equals_fresh_solve(
        cap in 1u64..12,
        tasks in 2usize..5,
        storage_weight in 1e-3f64..1.0,
    ) {
        let spec = PresetSpec::named("chain").with_tasks(tasks);
        let configuration = with_capacity_cap(&spec.build().unwrap(), cap);
        let mut options = SolveOptions::default().prefer_budget_minimisation();
        options.storage_weight_scale = storage_weight;

        let cache = SolveCache::new();
        let key = CacheKey::new(&configuration, &options, "joint");
        let canonical = || panic!("no disk tier: the canonical key must stay unmaterialised");
        let (first, source_first) =
            cache.solve_with(key, &configuration, canonical, || compute_mapping(&configuration, &options));
        let (hit_result, source_second) =
            cache.solve_with(key, &configuration, canonical, || panic!("second lookup must not solve"));
        let fresh = compute_mapping(&configuration, &options);

        prop_assert!(!source_first.is_hit());
        prop_assert!(source_second.is_hit());
        prop_assert_eq!(first.clone().unwrap(), hit_result.unwrap());
        prop_assert_eq!(first.unwrap(), fresh.unwrap());
    }
}
