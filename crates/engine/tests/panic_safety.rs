//! Panic safety and scheduler integration tests, driven through the real
//! `bbs` binary (`CARGO_BIN_EXE_bbs`).
//!
//! The contract under test: a panicking solve is a *per-point* error — the
//! run completes, every other point solves, the report stays schema-valid
//! and `--jobs`-deterministic — and the process exits non-zero because a
//! panic is an unexpected failure, never an expected infeasibility. Before
//! the work-stealing rewrite a single panic poisoned the shared queue mutex
//! and aborted the whole suite.

use bbs_engine::SuiteReport;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A unique, self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bbs-panic-it-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("scratch directory");
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Runs the real `bbs` binary without asserting on its exit status.
fn bbs_raw(args: &[&str], env: &[(&str, &str)], cwd: Option<&Path>) -> Output {
    let mut command = Command::new(env!("CARGO_BIN_EXE_bbs"));
    command.args(args);
    for (key, value) in env {
        command.env(key, value);
    }
    if let Some(cwd) = cwd {
        command.current_dir(cwd);
    }
    command.output().expect("bbs binary runs")
}

#[test]
fn injected_panic_is_a_per_point_error_not_an_abort() {
    let directory = TempDir::new("inject");
    let report_path = directory.path().join("faulted.json");
    let output = bbs_raw(
        &[
            "run",
            "--suite",
            "smoke",
            "--jobs",
            "4",
            "--json",
            report_path.to_str().unwrap(),
            "--quiet",
        ],
        &[("BBS_TEST_INJECT_PANIC", "smoke-pc:2")],
        None,
    );
    // The run completes and reports the panic as an unexpected failure.
    assert!(
        !output.status.success(),
        "a panicked point is an unexpected failure"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unexpected failures") && stderr.contains("smoke-pc cap 2"),
        "stderr: {stderr}"
    );

    // The report was still written, is schema-valid, and localises the
    // fault to exactly the addressed point.
    let report = SuiteReport::from_json(&fs::read_to_string(&report_path).unwrap()).unwrap();
    for scenario in &report.scenarios {
        for point in &scenario.points {
            if scenario.scenario == "smoke-pc" && point.capacity_cap == Some(2) {
                assert!(!point.feasible);
                let error = point.error.as_deref().unwrap();
                assert!(error.contains("panicked"), "error: {error}");
            } else {
                assert!(
                    point.feasible,
                    "{} cap {:?} must still solve",
                    scenario.scenario, point.capacity_cap
                );
            }
        }
    }
}

#[test]
fn faulted_reports_stay_jobs_deterministic() {
    let directory = TempDir::new("inject-jobs");
    let mut reports = Vec::new();
    for (label, jobs, steal) in [("j1", "1", true), ("j16", "16", true), ("sq", "16", false)] {
        let path = directory.path().join(format!("{label}.json"));
        let mut args = vec![
            "run",
            "--suite",
            "smoke",
            "--jobs",
            jobs,
            "--json",
            path.to_str().unwrap(),
            "--quiet",
        ];
        if !steal {
            args.push("--no-steal");
        }
        let output = bbs_raw(&args, &[("BBS_TEST_INJECT_PANIC", "smoke-chain:6")], None);
        assert!(!output.status.success());
        reports.push(fs::read_to_string(&path).unwrap());
    }
    assert_eq!(reports[0], reports[1], "jobs 1 vs 16 under a panic");
    assert_eq!(reports[0], reports[2], "work-stealing vs shared queue");
}

#[test]
fn malformed_panic_spec_fails_loudly() {
    let output = bbs_raw(
        &["run", "--suite", "smoke", "--quiet"],
        &[("BBS_TEST_INJECT_PANIC", "missing-a-cap")],
        None,
    );
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("BBS_TEST_INJECT_PANIC"));
}

#[test]
fn panic_spec_matching_no_point_fails_loudly() {
    // A well-formed spec that addresses a nonexistent point must error,
    // not run the suite cleanly and let the chaos check pass vacuously.
    for spec in ["no-such-scenario:1", "smoke-pc:99", "smoke-pc:-"] {
        let output = bbs_raw(
            &["run", "--suite", "smoke", "--quiet"],
            &[("BBS_TEST_INJECT_PANIC", spec)],
            None,
        );
        assert!(!output.status.success(), "spec {spec} must fail");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("matches no work item"),
            "spec {spec} stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
}

#[test]
fn blank_cache_env_behaves_like_unset() {
    // `BBS_CACHE_DIR=""` (an unset shell variable) and whitespace-only
    // values must not be taken as real paths: the run uses no store and
    // creates nothing in the working directory.
    for blank in ["", "   ", "\t"] {
        let cwd = TempDir::new("blank-env");
        let output = bbs_raw(
            &["run", "--suite", "smoke", "--quiet"],
            &[("BBS_CACHE_DIR", blank)],
            Some(cwd.path()),
        );
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            !stdout.contains("store:"),
            "no store tier may be attached: {stdout}"
        );
        let leftovers: Vec<_> = fs::read_dir(cwd.path())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert!(
            leftovers.is_empty(),
            "a blank BBS_CACHE_DIR={blank:?} materialised {leftovers:?}"
        );

        // Management commands agree: a blank env var means *no* directory.
        let stats = bbs_raw(
            &["cache", "stats"],
            &[("BBS_CACHE_DIR", blank)],
            Some(cwd.path()),
        );
        assert!(!stats.status.success());
        assert!(String::from_utf8_lossy(&stats.stderr).contains("no cache directory"));
    }
}

#[test]
fn scheduler_modes_report_identically_and_say_so() {
    let directory = TempDir::new("modes");
    let steal_path = directory.path().join("steal.json");
    let shared_path = directory.path().join("shared.json");
    let steal = bbs_raw(
        &[
            "run",
            "--suite",
            "smoke",
            "--jobs",
            "4",
            "--json",
            steal_path.to_str().unwrap(),
        ],
        &[],
        None,
    );
    let shared = bbs_raw(
        &[
            "run",
            "--suite",
            "smoke",
            "--jobs",
            "4",
            "--no-steal",
            "--json",
            shared_path.to_str().unwrap(),
        ],
        &[],
        None,
    );
    assert!(steal.status.success() && shared.status.success());
    assert!(String::from_utf8_lossy(&steal.stdout).contains("work-stealing"));
    assert!(String::from_utf8_lossy(&shared.stdout).contains("shared queue"));
    assert_eq!(
        fs::read_to_string(&steal_path).unwrap(),
        fs::read_to_string(&shared_path).unwrap()
    );
}
