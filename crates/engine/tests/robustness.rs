//! Fault-tolerance integration tests of the service layer: idle and
//! slow-loris reaping, cooperative cancellation (disconnect, deadline,
//! explicit cancel by ticket), and the determinism invariant that a
//! cancelled neighbour never changes what a healthy client receives.
//!
//! All timing here is poll-until-deadline, never sleep-and-hope: the
//! asserts read the server's own counters.

use bbs_engine::serve::{read_reply, send_request, FaultPlan, Reply, Request, ServeConfig, Server};
use bbs_engine::suites::smoke_suite;
use bbs_engine::{
    run_suite, CancelToken, Engine, EngineError, RunSettings, SolveCache, SuiteReport,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The reference report text: what a local one-shot run of `smoke` emits.
fn local_smoke_report() -> String {
    let outcome = run_suite(&smoke_suite(), &RunSettings::with_jobs(2)).unwrap();
    SuiteReport::from_outcome(&outcome).to_json()
}

/// Polls `condition` against fresh server stats until it holds or 30 s
/// elapse — counters move on scheduler time, not ours.
fn wait_for(server: &Server, what: &str, condition: impl Fn(&bbs_engine::StatsSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = server.stats();
        if condition(&stats) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A stall on `smoke-chain` cap 2 holds the engine mid-suite long enough
/// to observe cancellation, and leaves work *after* the stalled item under
/// both pop orders (it is neither the first nor the last item of `smoke`).
fn stall_plan(millis: u64) -> FaultPlan {
    FaultPlan::parse(&format!("stall-solve:smoke-chain:2:{millis}")).unwrap()
}

#[test]
fn a_pre_fired_cancel_token_aborts_the_submission_and_the_engine_survives() {
    let engine = Engine::new(2);
    let cache = Arc::new(SolveCache::new());
    let settings = RunSettings::with_jobs(2);
    let cancel = CancelToken::new();
    cancel.cancel();
    let err = engine
        .submit_with_cancel(&smoke_suite(), &settings, &cache, &cancel)
        .unwrap_err();
    assert!(matches!(err, EngineError::Cancelled), "got {err:?}");

    // The pool is fully reusable afterwards, and a cancelled predecessor
    // leaves no trace in the next report.
    let outcome = engine.submit(&smoke_suite(), &settings, &cache).unwrap();
    assert_eq!(
        SuiteReport::from_outcome(&outcome).to_json(),
        local_smoke_report()
    );
}

#[test]
fn an_idle_session_is_reaped_and_the_server_stays_healthy() {
    let server = Server::start(ServeConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Connect and say nothing: the server owes us nothing but a courtesy
    // error before it hangs up.
    let mut silent = TcpStream::connect(addr).unwrap();
    let reply = read_reply(&mut silent).unwrap().unwrap();
    assert_eq!(reply.kind, "error");
    assert_eq!(
        reply.message.as_deref(),
        Some("session reaped: idle timeout")
    );
    assert!(matches!(read_reply(&mut silent), Ok(None) | Err(_)));
    wait_for(&server, "the idle reap", |stats| {
        stats.sessions.as_ref().is_some_and(|s| s.reaped == 1)
    });

    // A session that *does* talk within the budget is not reaped.
    let mut healthy = TcpStream::connect(addr).unwrap();
    send_request(&mut healthy, &Request::stats()).unwrap();
    assert_eq!(read_reply(&mut healthy).unwrap().unwrap().kind, "stats");
    server.shutdown();
    server.wait();
}

#[test]
fn a_slow_loris_peer_is_reaped_mid_frame() {
    let server = Server::start(ServeConfig {
        frame_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Two header bytes, then silence: the frame budget, not the idle
    // budget, must end this connection.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(&[0u8, 0u8]).unwrap();
    loris.flush().unwrap();
    let reply = read_reply(&mut loris).unwrap().unwrap();
    assert_eq!(reply.kind, "error");
    assert_eq!(
        reply.message.as_deref(),
        Some("session reaped: request frame stalled")
    );
    wait_for(&server, "the slow-loris reap", |stats| {
        stats.sessions.as_ref().is_some_and(|s| s.reaped == 1)
    });

    // The listener still serves honest clients.
    let mut healthy = TcpStream::connect(addr).unwrap();
    send_request(&mut healthy, &Request::stats()).unwrap();
    assert_eq!(read_reply(&mut healthy).unwrap().unwrap().kind, "stats");
    server.shutdown();
    server.wait();
}

#[test]
fn a_disconnect_mid_solve_cancels_the_run_and_the_next_client_is_byte_identical() {
    let server = Server::start(ServeConfig {
        workers: 1,
        faults: stall_plan(1000),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Submit, get admitted, vanish while the stalled solve is in flight.
    let mut ghost = TcpStream::connect(addr).unwrap();
    send_request(&mut ghost, &Request::run_builtin("smoke", 1)).unwrap();
    assert_eq!(read_reply(&mut ghost).unwrap().unwrap().kind, "accepted");
    drop(ghost);

    // The session notices the dead socket, fires the token, and the
    // dispatcher retires the submission as cancelled — completed (the slot
    // is released) *and* counted as cancelled.
    wait_for(&server, "the cancelled drain", |stats| {
        stats
            .queue
            .as_ref()
            .is_some_and(|q| q.completed == 1 && q.cancelled == 1 && q.in_flight == 0)
    });

    // A healthy client on the freed engine gets the byte-exact report —
    // the aborted neighbour left no fingerprint.
    let mut healthy = TcpStream::connect(addr).unwrap();
    send_request(&mut healthy, &Request::run_builtin("smoke", 1)).unwrap();
    assert_eq!(read_reply(&mut healthy).unwrap().unwrap().kind, "accepted");
    let mut points = 0;
    loop {
        let reply = read_reply(&mut healthy).unwrap().unwrap();
        match reply.kind.as_str() {
            "point" => points += 1,
            "report" => {
                assert_eq!(reply.report.as_deref(), Some(local_smoke_report().as_str()));
                break;
            }
            other => panic!("unexpected reply kind `{other}`"),
        }
    }
    assert_eq!(points, 8);
    let queue = server.stats().queue.unwrap();
    assert_eq!(queue.completed, 2);
    assert_eq!(queue.cancelled, 1);
    server.shutdown();
    server.wait();
}

#[test]
fn an_expired_deadline_returns_a_structured_cancelled_reply() {
    let server = Server::start(ServeConfig {
        workers: 1,
        faults: stall_plan(1200),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    send_request(
        &mut stream,
        &Request::run_builtin("smoke", 1).with_deadline_ms(150),
    )
    .unwrap();
    assert_eq!(read_reply(&mut stream).unwrap().unwrap().kind, "accepted");
    let reply = read_reply(&mut stream).unwrap().unwrap();
    assert_eq!(reply.kind, "cancelled", "unexpected reply: {reply:?}");
    assert_eq!(reply.message.as_deref(), Some("deadline exceeded"));
    assert!(reply.ticket.is_some());
    let queue = server.stats().queue.unwrap();
    assert_eq!(queue.cancelled, 1);

    // The session survives its own cancelled run: without a deadline the
    // same suite (still stalled) completes normally.
    send_request(&mut stream, &Request::run_builtin("smoke", 1)).unwrap();
    loop {
        let reply = read_reply(&mut stream).unwrap().unwrap();
        match reply.kind.as_str() {
            "accepted" | "point" => {}
            "report" => break,
            other => panic!("unexpected reply kind `{other}`"),
        }
    }
    server.shutdown();
    server.wait();
}

#[test]
fn a_second_session_can_cancel_a_run_by_ticket() {
    let server = Server::start(ServeConfig {
        workers: 1,
        faults: stall_plan(1500),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut victim = TcpStream::connect(addr).unwrap();
    send_request(&mut victim, &Request::run_builtin("smoke", 1)).unwrap();
    let accepted = read_reply(&mut victim).unwrap().unwrap();
    assert_eq!(accepted.kind, "accepted");
    let ticket = accepted.ticket.expect("accepted replies carry the ticket");

    // The controller cancels from a different connection and gets an
    // immediate acknowledgement; the victim's pending run reply turns into
    // the structured `cancelled` frame.
    let mut controller = TcpStream::connect(addr).unwrap();
    send_request(&mut controller, &Request::cancel(ticket)).unwrap();
    let ack: Reply = read_reply(&mut controller).unwrap().unwrap();
    assert_eq!(ack.kind, "cancelled", "unexpected ack: {ack:?}");
    assert_eq!(ack.ticket, Some(ticket));

    let reply = read_reply(&mut victim).unwrap().unwrap();
    assert_eq!(reply.kind, "cancelled", "unexpected reply: {reply:?}");
    assert_eq!(reply.ticket, Some(ticket));
    assert_eq!(reply.message.as_deref(), Some("cancellation requested"));

    // Cancelling a ticket that no longer exists is a loud error, not a
    // silent no-op.
    send_request(&mut controller, &Request::cancel(ticket)).unwrap();
    let stale = read_reply(&mut controller).unwrap().unwrap();
    assert_eq!(stale.kind, "error");
    wait_for(&server, "the cancelled drain", |stats| {
        stats
            .queue
            .as_ref()
            .is_some_and(|q| q.completed == 1 && q.cancelled == 1)
    });
    server.shutdown();
    server.wait();
}
