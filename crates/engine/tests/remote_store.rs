//! Integration tests of the remote store tier: a `bbs serve` daemon acting
//! as a store peer for local runs via the `store_get`/`store_put` protocol
//! requests, with read-through fills and write-behind population.

use bbs_engine::suites::smoke_suite;
use bbs_engine::{
    generate_suite, run_suite_with_cache, BreakerConfig, GenParams, RemoteBackend, RunSettings,
    ServeConfig, Server, SolveCache, SolveStore, SuiteReport,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A unique, self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bbs-remote-store-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Starts a store-backed daemon on an ephemeral port.
fn start_peer(store_dir: &Path) -> Server {
    Server::start(ServeConfig {
        store: Some(SolveStore::open(store_dir).unwrap()),
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap()
}

/// A local store in `dir` with the daemon at `addr` as its remote tier.
fn tiered_cache(dir: &Path, addr: &str) -> SolveCache {
    let remote = RemoteBackend::connect(addr).unwrap();
    SolveCache::with_store(SolveStore::open(dir).unwrap().with_remote(Box::new(remote)))
}

#[test]
fn write_behind_populates_the_peer_and_read_through_refills_cold_dirs() {
    let directory = TempDir::new("tiering");
    let peer_dir = directory.path().join("peer");
    let server = start_peer(&peer_dir);
    let addr = server.addr().to_string();
    let settings = RunSettings::default();
    let suite = smoke_suite();

    // Run 1: everything is cold — 8 fresh solves land in the local dir
    // synchronously and stream to the peer via write-behind. Dropping the
    // cache (and with it the remote backend) flushes the writer.
    let first_report;
    {
        let cache = tiered_cache(&directory.path().join("a"), &addr);
        let outcome = run_suite_with_cache(&suite, &settings, &cache).unwrap();
        let stats = cache.store().unwrap().stats();
        assert!(stats.remote_enabled);
        assert_eq!(stats.fresh_solves, 8);
        assert_eq!(stats.remote_hits, 0);
        assert_eq!(stats.stored, 8);
        first_report = SuiteReport::from_outcome(&outcome).to_json();
    }
    let peer_summary = SolveStore::open_existing(&peer_dir)
        .unwrap()
        .summary()
        .unwrap();
    assert_eq!(peer_summary.entries, 8, "write-behind reached the peer");
    assert_eq!(peer_summary.v2_entries, 8);

    // Run 2: a brand-new local dir — every miss is served by the peer and
    // read through into the local tier; nothing is solved.
    {
        let cache = tiered_cache(&directory.path().join("b"), &addr);
        let outcome = run_suite_with_cache(&suite, &settings, &cache).unwrap();
        let stats = cache.store().unwrap().stats();
        assert_eq!(stats.fresh_solves, 0, "the peer keeps the run warm");
        assert_eq!(stats.remote_hits, 8);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.stored, 8, "read-through fills the local tier");
        assert_eq!(SuiteReport::from_outcome(&outcome).to_json(), first_report);
    }
    // The fills are now ordinary local entries...
    let local = SolveStore::open_existing(directory.path().join("b"))
        .unwrap()
        .summary()
        .unwrap();
    assert_eq!(local.entries, 8);

    // Run 3: the same local dir again — all plain disk hits, no remote
    // traffic needed, and still the identical report.
    {
        let cache = tiered_cache(&directory.path().join("b"), &addr);
        let outcome = run_suite_with_cache(&suite, &settings, &cache).unwrap();
        let stats = cache.store().unwrap().stats();
        assert_eq!(stats.disk_hits, 8);
        assert_eq!(stats.remote_hits, 0);
        assert_eq!(stats.fresh_solves, 0);
        assert_eq!(SuiteReport::from_outcome(&outcome).to_json(), first_report);
    }

    // The report never learned the store existed: a store-free run matches.
    let reference = run_suite_with_cache(&suite, &settings, &SolveCache::new()).unwrap();
    assert_eq!(
        SuiteReport::from_outcome(&reference).to_json(),
        first_report
    );

    server.shutdown();
    server.wait();
}

#[test]
fn peer_stats_reports_the_daemon_store_and_a_dead_peer_degrades_gracefully() {
    let directory = TempDir::new("degrade");
    let peer_dir = directory.path().join("peer");
    let server = start_peer(&peer_dir);
    let addr = server.addr().to_string();
    let settings = RunSettings::default();
    let suite = smoke_suite();

    // Populate the peer, then ask it for its own store report.
    {
        let cache = tiered_cache(&directory.path().join("a"), &addr);
        run_suite_with_cache(&suite, &settings, &cache).unwrap();
    }
    let probe = RemoteBackend::connect(&addr).unwrap();
    let report = probe.peer_stats().unwrap();
    assert_eq!(report.entries, 8);
    assert_eq!(report.v2_entries, 8);
    drop(probe);

    // Kill the peer. A tiered run against the dead address must still
    // succeed — remote errors are degradation, not failures — with every
    // solve done locally and nothing counted as rejected.
    server.shutdown();
    server.wait();
    // Connecting may already fail (the listener is gone) or briefly
    // succeed on OS-buffered sockets; both paths must degrade.
    let remote = RemoteBackend::connect(&addr).ok();
    let store = SolveStore::open(directory.path().join("c")).unwrap();
    let store = match remote {
        Some(remote) => store.with_remote(Box::new(remote)),
        None => store,
    };
    let cache = SolveCache::with_store(store);
    let outcome = run_suite_with_cache(&suite, &settings, &cache).unwrap();
    assert!(outcome.unexpected_failures().is_empty());
    let stats = cache.store().unwrap().stats();
    assert_eq!(stats.fresh_solves, 8);
    assert_eq!(stats.rejected, 0, "remote transport errors are not rejects");
}

#[test]
fn a_peer_blip_opens_the_breaker_and_a_probe_heals_it_in_process() {
    let directory = TempDir::new("breaker");
    let peer_dir = directory.path().join("peer");
    let server = start_peer(&peer_dir);
    let addr = server.addr().to_string();
    let settings = RunSettings::default();
    let suite = smoke_suite();

    // Populate the peer through a throwaway tiered run (dropping the cache
    // flushes the write-behind queue).
    {
        let cache = tiered_cache(&directory.path().join("a"), &addr);
        run_suite_with_cache(&suite, &settings, &cache).unwrap();
    }

    // The backend under test: a tight breaker so the blip and the heal
    // both fit in test time. Connected while the peer is still up.
    let remote = RemoteBackend::connect_with(
        &addr,
        BreakerConfig {
            threshold: 2,
            probe_backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(200),
        },
    )
    .unwrap();
    assert_eq!(remote.peer_stats().unwrap().entries, 8);

    // Blip: the peer dies. Two consecutive transport failures open the
    // breaker; the backend is degraded, not broken.
    server.shutdown();
    server.wait();
    assert!(remote.peer_stats().is_err());
    assert!(remote.peer_stats().is_err());
    let breaker = remote.breaker();
    assert!(breaker.is_open(), "two failures at threshold 2 must open");
    assert_eq!(breaker.opens(), 1);
    assert_eq!(breaker.closes(), 0);

    // Heal: restart the peer on the same address (std listeners set
    // SO_REUSEADDR), wait out the probe backoff, and attach the *same*
    // backend instance to a cold local dir. The first lookup probes,
    // closes the breaker, and every smoke key is served remotely again —
    // no process restart, no new connection object.
    let server = Server::start(ServeConfig {
        store: Some(SolveStore::open(&peer_dir).unwrap()),
        workers: 1,
        addr: addr.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let cache = SolveCache::with_store(
        SolveStore::open(directory.path().join("b"))
            .unwrap()
            .with_remote(Box::new(remote)),
    );
    let outcome = run_suite_with_cache(&suite, &settings, &cache).unwrap();
    assert!(outcome.unexpected_failures().is_empty());
    let stats = cache.store().unwrap().stats();
    assert_eq!(stats.remote_hits, 8, "remote hits resume after the heal");
    assert_eq!(stats.fresh_solves, 0);
    assert_eq!(stats.breaker_opens, 1);
    assert_eq!(stats.breaker_closes, 1);
    assert!(!stats.breaker_open);
    assert!(stats.breaker_probes >= 1);

    // Write-behind re-attached too: fresh solves of a suite the peer has
    // never seen stream back to it through the healed connection.
    let extra = generate_suite(&GenParams {
        seed: 11,
        points: 4,
    });
    run_suite_with_cache(&extra, &settings, &cache).unwrap();
    let fresh = cache.store().unwrap().stats().fresh_solves;
    assert!(
        fresh > 0,
        "the generated suite must actually solve something"
    );
    drop(cache); // flush the write-behind queue
    let peer_summary = SolveStore::open_existing(&peer_dir)
        .unwrap()
        .summary()
        .unwrap();
    assert!(
        peer_summary.entries > 8,
        "write-behind after the heal must reach the peer, got {} entries",
        peer_summary.entries
    );

    server.shutdown();
    server.wait();
}
