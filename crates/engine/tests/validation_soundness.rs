//! Simulation-backed soundness of the paper suites: every feasible mapping,
//! replayed on the discrete-event scheduler simulator, must meet the
//! throughput the solver guaranteed and stay within the buffer capacities
//! it computed.
//!
//! Two layers check the same property. The direct layer calls
//! `simulate_mapping` itself and asserts the raw measurements (worst
//! period against the requirement, every high-water mark against its
//! capacity), so it cannot be fooled by a bug in the engine's validation
//! stage. The engine layer runs the same suites through
//! `RunSettings::validate_all` and asserts the attached verdicts agree.

use bbs_engine::suites::{paper_plus_suite, paper_suite};
use bbs_engine::{run_suite, RunSettings, Suite, ValidationReport};
use bbs_scheduler_sim::{measurement_tolerance, simulate_mapping, SimulationSettings};
use std::collections::BTreeMap;

fn validated_settings() -> RunSettings {
    RunSettings {
        validate_all: true,
        jobs: 4,
        ..RunSettings::default()
    }
}

/// The direct layer: replay every feasible mapping of `suite` with the
/// simulator and assert the paper's soundness property on the raw
/// measurements.
fn assert_suite_is_sound(suite: &Suite) {
    let outcome = run_suite(suite, &validated_settings()).expect("suite runs");
    let iterations = validated_settings().simulation_iterations;
    let settings = SimulationSettings {
        iterations,
        ..SimulationSettings::default()
    };
    let mut replayed = 0usize;
    for scenario in &outcome.scenarios {
        let configuration = &scenario.configuration;
        let required_period = configuration
            .task_graphs()
            .map(|(_, graph)| graph.period())
            .fold(0.0f64, f64::max);
        let tolerance = measurement_tolerance(configuration, iterations);
        for point in &scenario.points {
            let Ok(mapping) = &point.result else { continue };
            let budgets: BTreeMap<_, _> = mapping.budgets().collect();
            let capacities: BTreeMap<_, _> = mapping.capacities().collect();
            let result = simulate_mapping(configuration, &budgets, &capacities, &settings)
                .unwrap_or_else(|e| {
                    panic!(
                        "{}/{:?}: feasible mapping fails to replay: {e}",
                        scenario.scenario.name, point.capacity_cap
                    )
                });
            assert!(
                result.worst_period() <= required_period + tolerance,
                "{}/{:?}: measured worst period {} exceeds required {} + tolerance {}",
                scenario.scenario.name,
                point.capacity_cap,
                result.worst_period(),
                required_period,
                tolerance
            );
            for (buffer, &capacity) in &capacities {
                let high_water = result.high_water_mark(*buffer);
                assert!(
                    high_water <= capacity,
                    "{}/{:?}: buffer {buffer:?} peaked at {high_water} over capacity {capacity}",
                    scenario.scenario.name,
                    point.capacity_cap
                );
            }
            // The engine layer: the validation stage attached the same
            // verdict to this point.
            let validation = point
                .validation
                .as_ref()
                .expect("validate_all annotates every feasible point");
            assert!(
                validation.is_sound(),
                "{}/{:?}: engine validation disagrees: {validation:?}",
                scenario.scenario.name,
                point.capacity_cap
            );
            assert_eq!(validation.buffers_checked, capacities.len() as u64);
            replayed += 1;
        }
    }
    assert!(
        replayed > 0,
        "the suite must have feasible points to replay"
    );
    let report = ValidationReport::from_outcome(&outcome);
    assert_eq!(report.validated_points(), replayed as u64);
    assert_eq!(report.violations(), 0, "{}", report.render_summary());
}

#[test]
fn every_feasible_paper_point_replays_soundly() {
    assert_suite_is_sound(&paper_suite());
}

#[test]
fn every_feasible_paper_plus_point_replays_soundly() {
    assert_suite_is_sound(&paper_plus_suite());
}
