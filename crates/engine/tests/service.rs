//! Integration tests of the service layer: real sockets against a real
//! [`Server`], plus the `bbs serve`/`bbs client` binary surface via
//! `CARGO_BIN_EXE_bbs`.
//!
//! The load-bearing property throughout: a report obtained through the
//! service is **byte-identical** to a local `bbs run` of the same suite —
//! cold cache, warm shared cache, or many concurrent clients.

use bbs_engine::serve::{
    read_reply, send_request, Reply, Request, ServeConfig, Server, StatsSnapshot,
};
use bbs_engine::suites::smoke_suite;
use bbs_engine::{run_suite, RunSettings, SolveStore, SuiteReport};
use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, Barrier};

/// A unique, self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bbs-service-it-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The reference report text: what a local one-shot run of `smoke` emits.
fn local_smoke_report() -> String {
    let outcome = run_suite(&smoke_suite(), &RunSettings::with_jobs(2)).unwrap();
    SuiteReport::from_outcome(&outcome).to_json()
}

/// Submits one `"run"` over an open connection and collects the streamed
/// replies up to the report. Panics on rejection — callers that expect
/// back-pressure drive the protocol by hand.
fn submit_and_collect(stream: &mut TcpStream, request: &Request) -> (u64, Reply) {
    send_request(stream, request).unwrap();
    let accepted = read_reply(stream).unwrap().unwrap();
    assert_eq!(accepted.kind, "accepted", "unexpected reply: {accepted:?}");
    let mut points = 0;
    loop {
        let reply = read_reply(stream).unwrap().unwrap();
        match reply.kind.as_str() {
            "point" => points += 1,
            "report" => return (points, reply),
            other => panic!("unexpected reply kind `{other}`"),
        }
    }
}

#[test]
fn served_reports_are_byte_identical_to_local_runs_cold_and_warm() {
    let reference = local_smoke_report();
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // Cold shared cache.
    let (points, report) = submit_and_collect(&mut stream, &Request::run_builtin("smoke", 2));
    assert_eq!(points, 8, "smoke has 8 sweep points");
    assert_eq!(report.message, None);
    assert_eq!(report.report.as_deref(), Some(reference.as_str()));

    // Warm shared cache — every solve now comes from memory, yet the
    // report (including its hit/miss counters) must not change.
    let (_, warm) = submit_and_collect(&mut stream, &Request::run_builtin("smoke", 2));
    assert_eq!(warm.report.as_deref(), Some(reference.as_str()));

    // And independent of the per-submission jobs cap.
    let (_, one_job) = submit_and_collect(&mut stream, &Request::run_builtin("smoke", 1));
    assert_eq!(one_job.report.as_deref(), Some(reference.as_str()));

    server.shutdown();
    server.wait();
}

#[test]
fn four_concurrent_clients_get_identical_reports() {
    let reference = Arc::new(local_smoke_report());
    let server = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let reference = Arc::clone(&reference);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                barrier.wait();
                for _ in 0..3 {
                    let (points, report) =
                        submit_and_collect(&mut stream, &Request::run_builtin("smoke", 2));
                    assert_eq!(points, 8);
                    assert_eq!(report.report.as_deref(), Some(reference.as_str()));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let stats = server.stats();
    let queue = stats.queue.unwrap();
    assert_eq!(queue.submitted, 12);
    assert_eq!(queue.completed, 12);
    assert_eq!(queue.depth, 0);
    assert_eq!(queue.in_flight, 0);
    server.shutdown();
    server.wait();
}

#[test]
fn a_full_queue_rejects_with_retry_and_the_retry_succeeds() {
    let reference = Arc::new(local_smoke_report());
    // Capacity 1: while any submission is queued or in flight, every other
    // client is refused at the door with a structured retry hint.
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_capacity: 1,
        retry_after_ms: 5,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let clients = 3;
    let submissions_each = 4u64;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let reference = Arc::clone(&reference);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                barrier.wait();
                let mut rejections = 0u64;
                for _ in 0..submissions_each {
                    'submit: loop {
                        send_request(&mut stream, &Request::run_builtin("smoke", 1)).unwrap();
                        loop {
                            let reply = read_reply(&mut stream).unwrap().unwrap();
                            match reply.kind.as_str() {
                                "accepted" | "point" => {}
                                "report" => {
                                    assert_eq!(
                                        reply.report.as_deref(),
                                        Some(reference.as_str()),
                                        "a report after back-pressure must still be byte-exact"
                                    );
                                    break 'submit;
                                }
                                "rejected" => {
                                    // The structured refusal: reason + hint.
                                    assert_eq!(reply.message.as_deref(), Some("queue full"));
                                    let wait = reply.retry_after_ms.expect("retry hint");
                                    assert_eq!(wait, 5);
                                    rejections += 1;
                                    std::thread::sleep(std::time::Duration::from_millis(wait));
                                    continue 'submit;
                                }
                                other => panic!("unexpected reply kind `{other}`"),
                            }
                        }
                    }
                }
                rejections
            })
        })
        .collect();
    let rejections: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let stats = server.stats();
    let queue = stats.queue.unwrap();
    // Every submission eventually completed; none were dropped silently.
    assert_eq!(queue.completed, clients as u64 * submissions_each);
    assert_eq!(queue.rejected, rejections);
    // Three clients racing a capacity-1 queue from a barrier must collide:
    // at most one of the first simultaneous volley can be admitted.
    assert!(rejections >= 1, "expected at least one rejection");
    server.shutdown();
    server.wait();
}

#[test]
fn stats_exposes_queue_engine_cache_and_store_sections() {
    let directory = TempDir::new("stats");
    let server = Server::start(ServeConfig {
        workers: 3,
        store: Some(SolveStore::open(directory.path()).unwrap()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    submit_and_collect(&mut stream, &Request::run_builtin("smoke", 2));

    send_request(&mut stream, &Request::stats()).unwrap();
    let reply = read_reply(&mut stream).unwrap().unwrap();
    assert_eq!(reply.kind, "stats");
    let snapshot = reply.stats.unwrap();
    // The snapshot round-trips through its canonical JSON form — the same
    // text `bbs cache stats --json` prints.
    assert_eq!(
        StatsSnapshot::from_json(&snapshot.to_json()).unwrap(),
        snapshot
    );
    let queue = snapshot.queue.unwrap();
    assert_eq!(queue.submitted, 1);
    assert_eq!(queue.completed, 1);
    assert_eq!(snapshot.engine.unwrap().workers, 3);
    let cache = snapshot.cache.unwrap();
    assert_eq!(cache.misses, 8, "8 distinct smoke keys missed the cache");
    let store = snapshot.store.unwrap();
    assert_eq!(store.entries, 8);
    assert_eq!(store.stored, 8);
    assert_eq!(store.fresh_solves, 8);
    server.shutdown();
    server.wait();
}

#[test]
fn graceful_shutdown_drains_admitted_work_and_refuses_new() {
    let reference = local_smoke_report();
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Admit a submission, then shut down before collecting its replies.
    let mut worker = TcpStream::connect(addr).unwrap();
    send_request(&mut worker, &Request::run_builtin("smoke", 2)).unwrap();
    let accepted = read_reply(&mut worker).unwrap().unwrap();
    assert_eq!(accepted.kind, "accepted");

    let mut controller = TcpStream::connect(addr).unwrap();
    send_request(&mut controller, &Request::shutdown()).unwrap();
    assert_eq!(read_reply(&mut controller).unwrap().unwrap().kind, "bye");

    // The admitted submission still completes in full.
    let mut points = 0;
    loop {
        let reply = read_reply(&mut worker).unwrap().unwrap();
        match reply.kind.as_str() {
            "point" => points += 1,
            "report" => {
                assert_eq!(reply.report.as_deref(), Some(reference.as_str()));
                break;
            }
            other => panic!("unexpected reply kind `{other}`"),
        }
    }
    assert_eq!(points, 8);
    // And the whole server winds down without hanging.
    server.wait();
}

#[test]
fn closed_queue_rejects_new_submissions_during_drain() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();
    // Open the connection while the server still accepts, but submit only
    // after shutdown: the session is alive, the queue is closed.
    let mut stream = TcpStream::connect(addr).unwrap();
    send_request(&mut stream, &Request::stats()).unwrap();
    assert_eq!(read_reply(&mut stream).unwrap().unwrap().kind, "stats");
    server.shutdown();
    send_request(&mut stream, &Request::run_builtin("smoke", 1)).unwrap();
    // The session may already have exited between the flag flip and our
    // frame landing; a dropped connection is an acceptable (and loud)
    // refusal too — just never a silent hang or a success.
    if let Ok(Some(reply)) = read_reply(&mut stream) {
        assert_eq!(reply.kind, "rejected", "unexpected reply: {reply:?}");
        assert_eq!(reply.message.as_deref(), Some("server is shutting down"));
        assert!(reply.retry_after_ms.is_some());
    }
    server.wait();
}

#[test]
fn an_oversized_frame_header_ends_the_session_but_not_the_server() {
    use std::io::Write as _;
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();

    // A header claiming one byte above the 32 MiB cap, with no body: the
    // session must refuse to allocate and drop the connection.
    let mut attacker = TcpStream::connect(addr).unwrap();
    let oversized = (32 * 1024 * 1024 + 1u32).to_be_bytes();
    attacker.write_all(&oversized).unwrap();
    attacker.flush().unwrap();
    // The server closes the connection (EOF) rather than replying; either a
    // clean close or a reset counts, a reply or a hang does not.
    match read_reply(&mut attacker) {
        Ok(None) | Err(_) => {}
        Ok(Some(reply)) => panic!("expected a closed connection, got {reply:?}"),
    }

    // The listener and dispatcher survive: a fresh connection still serves.
    let mut healthy = TcpStream::connect(addr).unwrap();
    let (points, report) = submit_and_collect(&mut healthy, &Request::run_builtin("smoke", 2));
    assert_eq!(points, 8);
    assert_eq!(
        report.report.as_deref(),
        Some(local_smoke_report().as_str())
    );
    server.shutdown();
    server.wait();
}

#[test]
fn a_malformed_json_frame_gets_an_error_reply_and_the_session_continues() {
    use std::io::Write as _;
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // A well-formed frame whose payload is not a request: framing survives,
    // decoding fails, and the session must say so instead of dying.
    let garbage = b"{this is not json";
    let mut frame = Vec::new();
    frame.extend_from_slice(&(garbage.len() as u32).to_be_bytes());
    frame.extend_from_slice(garbage);
    stream.write_all(&frame).unwrap();
    stream.flush().unwrap();
    let reply = read_reply(&mut stream).unwrap().unwrap();
    assert_eq!(reply.kind, "error");
    assert!(
        reply
            .message
            .as_deref()
            .is_some_and(|m| m.starts_with("malformed request")),
        "unexpected message: {:?}",
        reply.message
    );

    // A truncated frame — header promising more bytes than ever arrive —
    // ends a *different* session quietly (there is nothing left to parse).
    let mut truncated = TcpStream::connect(server.addr()).unwrap();
    truncated.write_all(&64u32.to_be_bytes()).unwrap();
    truncated.write_all(b"short").unwrap();
    drop(truncated);

    // The first session is still alive and fully functional after its
    // error reply, and the server after the truncated one.
    let (points, _) = submit_and_collect(&mut stream, &Request::run_builtin("smoke", 1));
    assert_eq!(points, 8);
    server.shutdown();
    server.wait();
}

#[test]
fn a_client_disconnecting_mid_submission_releases_its_queue_slot() {
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_capacity: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Submit, get admitted, then vanish without collecting any replies.
    let mut ghost = TcpStream::connect(addr).unwrap();
    send_request(&mut ghost, &Request::run_builtin("smoke", 2)).unwrap();
    assert_eq!(read_reply(&mut ghost).unwrap().unwrap().kind, "accepted");
    drop(ghost);

    // The dispatcher must finish the orphaned work and free its slot: with
    // queue_capacity 1, the next submission can only be admitted once
    // `complete()` ran. Poll the counters rather than sleeping blind.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let queue = server.stats().queue.unwrap();
        if queue.completed == 1 && queue.in_flight == 0 && queue.depth == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned submission never drained: {queue:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // The freed slot admits and serves a well-behaved client.
    let mut healthy = TcpStream::connect(addr).unwrap();
    let (points, report) = submit_and_collect(&mut healthy, &Request::run_builtin("smoke", 2));
    assert_eq!(points, 8);
    assert_eq!(
        report.report.as_deref(),
        Some(local_smoke_report().as_str())
    );
    let queue = server.stats().queue.unwrap();
    assert_eq!(queue.submitted, 2);
    assert_eq!(queue.completed, 2);
    server.shutdown();
    server.wait();
}

/// Runs the real `bbs` binary, asserting success, returning stdout.
fn bbs(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_bbs"))
        .args(args)
        .output()
        .expect("bbs binary runs");
    assert!(
        output.status.success(),
        "bbs {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("bbs prints UTF-8")
}

#[test]
fn cli_serve_and_client_round_trip_byte_identical_reports() {
    let directory = TempDir::new("cli");
    fs::create_dir_all(directory.path()).unwrap();
    let baseline = directory.path().join("baseline.json");
    let served = directory.path().join("served.json");
    let served_warm = directory.path().join("served-warm.json");

    bbs(&[
        "run",
        "--suite",
        "smoke",
        "--quiet",
        "--json",
        baseline.to_str().unwrap(),
    ]);

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_bbs"))
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("bbs serve starts");
    let mut daemon_stdout = BufReader::new(daemon.stdout.take().unwrap());
    let mut announcement = String::new();
    daemon_stdout.read_line(&mut announcement).unwrap();
    let addr = announcement
        .trim()
        .strip_prefix("bbs serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {announcement:?}"))
        .to_string();

    bbs(&[
        "client",
        "run",
        "--addr",
        &addr,
        "--suite",
        "smoke",
        "--quiet",
        "--json",
        served.to_str().unwrap(),
    ]);
    bbs(&[
        "client",
        "run",
        "--addr",
        &addr,
        "--suite",
        "smoke",
        "--quiet",
        "--json",
        served_warm.to_str().unwrap(),
    ]);
    let stats = bbs(&["client", "stats", "--addr", &addr]);
    let snapshot = StatsSnapshot::from_json(&stats).unwrap();
    assert_eq!(snapshot.queue.unwrap().completed, 2);

    let shutdown = bbs(&["client", "shutdown", "--addr", &addr]);
    assert!(shutdown.contains("server acknowledged shutdown"));
    let status = daemon.wait().expect("bbs serve exits");
    assert!(status.success(), "bbs serve must exit 0 after shutdown");
    let mut rest = String::new();
    daemon_stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("shut down cleanly"), "stdout tail: {rest:?}");

    let baseline_text = fs::read_to_string(&baseline).unwrap();
    assert_eq!(baseline_text, fs::read_to_string(&served).unwrap());
    assert_eq!(baseline_text, fs::read_to_string(&served_warm).unwrap());
}
