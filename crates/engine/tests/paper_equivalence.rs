//! The engine reproduces the paper's experiments exactly.
//!
//! Every scenario of the built-in `paper` suite must produce results
//! identical to driving the core library directly (the old `figures` code
//! path): same mappings for the sweeps, same flows for the ablation, same
//! simulator verdicts for the validation. The heavyweight `runtime-16/24`
//! scenarios are exercised in release builds by CI (`bbs run --suite
//! paper`); here we cover the cheap ones.

use bbs_engine::suites::{
    ablation_scenarios, fig2a_scenario, fig2b_scenario, fig3_scenario, ring_scenario,
    validate_scenario,
};
use bbs_engine::{run_scenario, run_suite, RunSettings, Suite, SuiteReport};
use bbs_taskgraph::presets::{chain3, producer_consumer, PaperParameters};
use budget_buffer::{
    compute_mapping, compute_mapping_two_phase, sweep_buffer_capacity, with_capacity_cap,
    BudgetPolicy, SolveOptions,
};

fn paper_options() -> SolveOptions {
    SolveOptions::default().prefer_budget_minimisation()
}

#[test]
fn fig2a_and_fig2b_match_the_direct_sweep() {
    let suite = Suite::new("f2", vec![fig2a_scenario(), fig2b_scenario()]);
    let outcome = run_suite(&suite, &RunSettings::with_jobs(4)).unwrap();
    let direct = sweep_buffer_capacity(
        &producer_consumer(PaperParameters::default(), None),
        1..=10,
        &paper_options(),
    )
    .unwrap();
    for scenario in &outcome.scenarios {
        assert_eq!(scenario.points.len(), 10);
        for (point, reference) in scenario.points.iter().zip(&direct) {
            assert_eq!(point.capacity_cap, Some(reference.capacity_cap));
            assert_eq!(point.result.as_ref().unwrap(), &reference.mapping);
        }
    }
    // The two scenarios share their 10 keys, so each capacity cap is solved
    // exactly once; *which* of the two racing scenarios claims the fresh
    // solve is scheduling-dependent, but the totals are not. fig2b then
    // reports the derivative series.
    assert_eq!(outcome.cache.misses, 10);
    assert_eq!(outcome.cache.hits, 10);
    for (a, b) in outcome.scenarios[0]
        .points
        .iter()
        .zip(&outcome.scenarios[1].points)
    {
        assert!(
            a.source.is_hit() ^ b.source.is_hit(),
            "exactly one of fig2a/fig2b solves each cap"
        );
    }
    let report = SuiteReport::from_outcome(&outcome);
    let deltas = report.scenarios[1].budget_reduction.as_ref().unwrap();
    assert_eq!(deltas.len(), 9);
    let caps: Vec<u64> = deltas.iter().map(|&(cap, _)| cap).collect();
    assert_eq!(caps, (2..=10).collect::<Vec<u64>>());
    assert_eq!(
        deltas.iter().map(|&(_, d)| d).sum::<f64>(),
        (direct[0].mapping.total_budget() - direct[9].mapping.total_budget()) as f64
    );
}

#[test]
fn fig3_matches_the_direct_chain_sweep() {
    let outcome = run_scenario(&fig3_scenario(), &RunSettings::default()).unwrap();
    let direct = sweep_buffer_capacity(
        &chain3(PaperParameters::default(), None),
        1..=10,
        &paper_options(),
    )
    .unwrap();
    for (point, reference) in outcome.points.iter().zip(&direct) {
        assert_eq!(point.result.as_ref().unwrap(), &reference.mapping);
    }
}

#[test]
fn ablation_matches_the_direct_flows() {
    let suite = Suite::new("ablation", ablation_scenarios());
    let outcome = run_suite(&suite, &RunSettings::with_jobs(2)).unwrap();
    let by_name = |name: &str| {
        outcome
            .scenarios
            .iter()
            .find(|s| s.scenario.name == name)
            .unwrap_or_else(|| panic!("scenario {name} missing"))
    };
    let pc = producer_consumer(PaperParameters::default(), None);
    let capped = with_capacity_cap(&pc, 3);

    let joint = compute_mapping(&pc, &paper_options()).unwrap();
    assert_eq!(
        by_name("ablation-joint-ipm").points[0]
            .result
            .as_ref()
            .unwrap(),
        &joint
    );

    let cutting = compute_mapping(&pc, &paper_options().with_cutting_plane()).unwrap();
    assert_eq!(
        by_name("ablation-joint-cp").points[0]
            .result
            .as_ref()
            .unwrap(),
        &cutting
    );

    let two_phase_min =
        compute_mapping_two_phase(&pc, BudgetPolicy::ThroughputMinimum, &paper_options()).unwrap();
    assert_eq!(
        by_name("ablation-two-phase-min").points[0]
            .result
            .as_ref()
            .unwrap(),
        &two_phase_min.mapping
    );

    let two_phase_fair =
        compute_mapping_two_phase(&pc, BudgetPolicy::FairShare, &paper_options()).unwrap();
    assert_eq!(
        by_name("ablation-two-phase-fair").points[0]
            .result
            .as_ref()
            .unwrap(),
        &two_phase_fair.mapping
    );

    let joint_capped = compute_mapping(&capped, &paper_options()).unwrap();
    assert_eq!(
        by_name("ablation-joint-cap3").points[0]
            .result
            .as_ref()
            .unwrap(),
        &joint_capped
    );

    // The paper's false negative: the minimum-budget two-phase flow cannot
    // size the capped buffer, while the joint flow above adapts.
    let false_negative = by_name("ablation-two-phase-min-cap3");
    assert!(false_negative.points[0].result.is_err());
    assert!(
        compute_mapping_two_phase(&capped, BudgetPolicy::ThroughputMinimum, &paper_options())
            .is_err()
    );
    assert!(outcome.unexpected_failures().is_empty());
}

#[test]
fn validate_scenario_meets_the_guarantee_on_every_point() {
    let outcome = run_scenario(&validate_scenario(), &RunSettings::default()).unwrap();
    assert_eq!(outcome.points.len(), 6);
    for point in &outcome.points {
        let check = point.validation.as_ref().expect("validation requested");
        assert!(
            check.period_ok,
            "guarantee violated at cap {:?}: measured {} > required {} + {}",
            point.capacity_cap, check.measured_period, check.required_period, check.tolerance
        );
        assert_eq!(check.buffer_violations, 0, "cap {:?}", point.capacity_cap);
    }
    // The loosest mapping (cap 10, minimum budgets) runs closest to the
    // requirement; everything must still be within the transient tolerance.
    let last = outcome.points.last().unwrap();
    let check = last.validation.as_ref().unwrap();
    assert!(check.measured_period > 1.0 && check.measured_period.is_finite());
}

#[test]
fn ring_experiment_shows_capacity_insensitive_budgets() {
    let outcome = run_scenario(&ring_scenario(), &RunSettings::default()).unwrap();
    assert_eq!(outcome.points.len(), 9, "caps 2..=10");
    let totals: Vec<u64> = outcome
        .points
        .iter()
        .map(|p| p.result.as_ref().unwrap().total_budget())
        .collect();
    // In a ring the cycle's token count — not the buffer capacity — bounds
    // throughput, so the budget curve is flat where a chain's would fall.
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "ring budgets must not depend on the capacity cap: {totals:?}"
    );
    // And the feedback token bound keeps budgets strictly above the
    // producer/consumer floor (2 tasks x 4 cycles).
    assert!(totals[0] > 8);
}
