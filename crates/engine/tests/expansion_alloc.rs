//! Proof that suite expansion performs O(scenarios), not O(points), heap
//! allocations, via a counting global allocator.
//!
//! This is the acceptance test for the copy-on-write expansion redesign:
//! minting a sweep point's work item — a `ConfigView` over the scenario's
//! shared base plus a pre-derived streaming cache key — must not allocate
//! at all, so expanding a sweep costs a fixed handful of per-scenario
//! allocations (workload resolution, the cap list, the hoisted key seed,
//! one reserved item vector) no matter how many points it has. The old
//! scheme cloned the full configuration once per point.
//!
//! The file deliberately contains a single `#[test]`: the counter is
//! process-global, and a lone test keeps the harness from running anything
//! concurrently with the measured regions.

use bbs_engine::{expand_suite, RunSettings, Scenario, Suite, SweepSpec, WorkloadSpec};
use bbs_taskgraph::presets::PresetSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation call.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter is an atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn sweep_suite(points: u64) -> Suite {
    Suite::new(
        "alloc",
        vec![Scenario::new(
            "pc",
            WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
        )
        .with_sweep(SweepSpec::range(1, points))],
    )
}

#[test]
fn expansion_allocations_do_not_scale_with_point_count() {
    // Serial settings: the parallel path adds per-chunk vectors and thread
    // machinery, which is O(chunks), not what this test pins down.
    let settings = RunSettings::default();
    let small = sweep_suite(100);
    let large = sweep_suite(1000);

    // Warm up once so lazily initialised process state is not charged to
    // the first measured expansion.
    black_box(expand_suite(&small, &settings).unwrap());
    black_box(expand_suite(&large, &settings).unwrap());

    let before = allocations();
    let summary = black_box(expand_suite(&small, &settings).unwrap());
    let small_allocations = allocations() - before;
    assert_eq!(summary.points, 100);

    let before = allocations();
    let summary = black_box(expand_suite(&large, &settings).unwrap());
    let large_allocations = allocations() - before;
    assert_eq!(summary.points, 1000);

    assert_eq!(
        small_allocations, large_allocations,
        "ten times the sweep points must not change the allocation count: \
         work items are allocation-free copy-on-write views, so expansion \
         allocates per scenario, never per point"
    );

    // Sanity: the counter is actually live.
    let before = allocations();
    black_box(Vec::<u8>::with_capacity(32));
    assert!(allocations() > before, "counting allocator must be active");
}
