//! Integration tests of the persistent solve store: cross-process reuse,
//! corruption fallback, retention, jobs-independence, and the `bbs cache`
//! CLI surface.
//!
//! "Cross-process" is exercised two ways: by opening fresh
//! [`SolveCache`]/[`SolveStore`] pairs on one directory (each pair is what a
//! new process would build), and for the CLI tests by actually spawning the
//! `bbs` binary via `CARGO_BIN_EXE_bbs`.

use bbs_engine::suites::smoke_suite;
use bbs_engine::{
    run_suite_with_cache, GcPolicy, RunSettings, Scenario, SolveCache, SolveSource, SolveStore,
    Suite, SuiteReport, SweepSpec, WorkloadSpec,
};
use bbs_taskgraph::presets::PresetSpec;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A unique, self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bbs-store-it-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn fresh_cache(directory: &Path) -> SolveCache {
    SolveCache::with_store(SolveStore::open(directory).unwrap())
}

/// A suite mixing feasible sweeps with an expected infeasibility, so
/// persistence of both outcome kinds is exercised.
fn mixed_suite() -> Suite {
    Suite::new(
        "mixed",
        vec![
            Scenario::new(
                "pc",
                WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
            )
            .with_sweep(SweepSpec::range(1, 5)),
            Scenario::new(
                "ring-tight",
                WorkloadSpec::preset(
                    PresetSpec::named("ring")
                        .with_tasks(3)
                        .with_initial_tokens(2),
                ),
            )
            .with_sweep(SweepSpec::range(1, 3))
            .expecting_infeasible(),
        ],
    )
}

#[test]
fn second_process_is_all_disk_hits_with_an_identical_report() {
    let directory = TempDir::new("reuse");
    let settings = RunSettings::default();

    let cold_cache = fresh_cache(directory.path());
    let cold = run_suite_with_cache(&mixed_suite(), &settings, &cold_cache).unwrap();
    let cold_stats = cold_cache.store().unwrap().stats();
    assert_eq!(cold_stats.disk_hits, 0);
    assert_eq!(cold_stats.fresh_solves, 8, "5 pc caps + 3 ring caps");
    assert_eq!(cold_stats.stored, 8, "infeasibility is persisted too");

    let warm_cache = fresh_cache(directory.path());
    let warm = run_suite_with_cache(&mixed_suite(), &settings, &warm_cache).unwrap();
    let warm_stats = warm_cache.store().unwrap().stats();
    assert_eq!(warm_stats.fresh_solves, 0, "nothing solved on a warm store");
    assert_eq!(warm_stats.disk_hits, 8);
    assert_eq!(warm_stats.stored, 0);
    assert!(warm
        .scenarios
        .iter()
        .flat_map(|s| &s.points)
        .all(|p| p.source == SolveSource::Disk));

    // Same mappings, same error strings, byte-identical reports.
    let cold_report = SuiteReport::from_outcome(&cold).to_json();
    let warm_report = SuiteReport::from_outcome(&warm).to_json();
    assert_eq!(cold_report, warm_report);
    // The persisted infeasibility round-trips its exact message.
    assert_eq!(
        warm.scenarios[1].points[0].result.as_ref().unwrap_err(),
        cold.scenarios[1].points[0].result.as_ref().unwrap_err()
    );
}

#[test]
fn corrupt_and_foreign_version_entries_fall_back_to_fresh_solves() {
    let directory = TempDir::new("corrupt");
    let settings = RunSettings::default();
    let suite = smoke_suite();

    let cache = fresh_cache(directory.path());
    run_suite_with_cache(&suite, &settings, &cache).unwrap();
    let stored = cache.store().unwrap().stats().stored;
    assert!(stored > 0);

    // Garble one entry and stamp another with a foreign schema version —
    // decompressing and recompressing the v2 container around the edit.
    let entries = cache.store().unwrap().entries().unwrap();
    assert_eq!(entries.len() as u64, stored);
    fs::write(&entries[0].path, "{truncated garbage").unwrap();
    let text = String::from_utf8(minilz::decompress(&fs::read(&entries[1].path).unwrap()).unwrap())
        .unwrap();
    fs::write(
        &entries[1].path,
        minilz::compress(text.replace("\"schema\":2", "\"schema\":999").as_bytes()),
    )
    .unwrap();

    let recovering = fresh_cache(directory.path());
    let outcome = run_suite_with_cache(&suite, &settings, &recovering).unwrap();
    assert!(outcome.unexpected_failures().is_empty());
    let stats = recovering.store().unwrap().stats();
    assert_eq!(stats.disk_hits, stored - 2);
    assert_eq!(stats.fresh_solves, 2, "both bad entries were re-solved");
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.stored, 2, "and both were re-written");

    // Third run: the store healed itself.
    let healed = fresh_cache(directory.path());
    run_suite_with_cache(&suite, &settings, &healed).unwrap();
    assert_eq!(healed.store().unwrap().stats().fresh_solves, 0);
}

#[test]
fn reports_are_byte_identical_across_jobs_with_the_disk_tier() {
    let directory = TempDir::new("jobs");
    let suite = mixed_suite();

    // Cold, parallel.
    let parallel_cache = fresh_cache(directory.path());
    let parallel =
        run_suite_with_cache(&suite, &RunSettings::with_jobs(8), &parallel_cache).unwrap();
    // Warm, sequential — different jobs *and* different disk state.
    let sequential_cache = fresh_cache(directory.path());
    let sequential =
        run_suite_with_cache(&suite, &RunSettings::with_jobs(1), &sequential_cache).unwrap();

    let parallel_report = SuiteReport::from_outcome(&parallel);
    let sequential_report = SuiteReport::from_outcome(&sequential);
    assert_eq!(parallel_report.to_json(), sequential_report.to_json());
    // The in-memory counters embedded in the report are disk-independent...
    assert_eq!(parallel.cache, sequential.cache);
    // ...while the store counters differ exactly by the warm/cold state.
    assert_eq!(parallel.store.unwrap().fresh_solves, 8);
    assert_eq!(sequential.store.unwrap().disk_hits, 8);
}

#[test]
fn gc_retention_is_enforced() {
    let directory = TempDir::new("gc");
    let cache = fresh_cache(directory.path());
    run_suite_with_cache(&mixed_suite(), &RunSettings::default(), &cache).unwrap();
    let store = cache.store().unwrap();
    assert_eq!(store.summary().unwrap().entries, 8);

    let outcome = store
        .gc(GcPolicy {
            max_entries: Some(3),
            max_age: None,
            max_bytes: None,
        })
        .unwrap();
    assert_eq!(outcome.removed, 5);
    assert_eq!(outcome.kept, 3);
    assert_eq!(store.summary().unwrap().entries, 3);

    // A later run back-fills only the evicted entries.
    let refill = fresh_cache(directory.path());
    run_suite_with_cache(&mixed_suite(), &RunSettings::default(), &refill).unwrap();
    let stats = refill.store().unwrap().stats();
    assert_eq!(stats.disk_hits, 3);
    assert_eq!(stats.fresh_solves, 5);
    assert_eq!(refill.store().unwrap().summary().unwrap().entries, 8);
}

/// Runs the real `bbs` binary with the given arguments, returning stdout.
fn bbs(args: &[&str], env: &[(&str, &str)]) -> String {
    let mut command = Command::new(env!("CARGO_BIN_EXE_bbs"));
    command.args(args);
    for (key, value) in env {
        command.env(key, value);
    }
    let output = command.output().expect("bbs binary runs");
    assert!(
        output.status.success(),
        "bbs {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("bbs prints UTF-8")
}

#[test]
fn cli_round_trip_run_stats_gc_clear() {
    let directory = TempDir::new("cli");
    let dir = directory.path().to_str().unwrap();
    let json_cold = directory.path().join("cold.json");
    let json_warm = directory.path().join("warm.json");
    let cache_dir = directory.path().join("cache");
    let cache_dir = cache_dir.to_str().unwrap();

    let cold = bbs(
        &[
            "run",
            "--suite",
            "smoke",
            "--cache-dir",
            cache_dir,
            "--json",
            json_cold.to_str().unwrap(),
        ],
        &[],
    );
    assert!(cold.contains("/ 8 newly stored /"), "stdout: {cold}");

    // The warm run goes through BBS_CACHE_DIR instead of the flag.
    let warm = bbs(
        &[
            "run",
            "--suite",
            "smoke",
            "--json",
            json_warm.to_str().unwrap(),
        ],
        &[("BBS_CACHE_DIR", cache_dir)],
    );
    assert!(
        warm.contains("store: 8 disk hits / 0 fresh solves /"),
        "stdout: {warm}"
    );
    assert_eq!(
        fs::read_to_string(&json_cold).unwrap(),
        fs::read_to_string(&json_warm).unwrap(),
        "cold and warm reports must be byte-identical"
    );

    let stats = bbs(&["cache", "stats", "--cache-dir", cache_dir], &[]);
    assert!(stats.contains("8 entries (8 feasible, 0 infeasible)"));

    let gc = bbs(
        &[
            "cache",
            "gc",
            "--max-entries",
            "2",
            "--cache-dir",
            cache_dir,
        ],
        &[],
    );
    assert!(gc.contains("removed 6 entries, kept 2"), "stdout: {gc}");

    let cleared = bbs(&["cache", "clear", "--cache-dir", cache_dir], &[]);
    assert!(cleared.contains("removed 2 entries"), "stdout: {cleared}");
    let stats = bbs(&["cache", "stats", "--cache-dir", cache_dir], &[]);
    assert!(stats.contains("0 entries (0 feasible, 0 infeasible)"));

    // `--no-cache` must not touch the store even when the env var is set.
    let raw = bbs(
        &["run", "--suite", "smoke", "--no-cache", "--quiet"],
        &[("BBS_CACHE_DIR", dir)],
    );
    assert!(raw.is_empty());
    let stats = bbs(&["cache", "stats", "--cache-dir", dir], &[]);
    assert!(stats.contains("0 entries"), "stdout: {stats}");
}

#[test]
fn two_processes_racing_on_one_cache_dir_leave_a_consistent_store() {
    let directory = TempDir::new("race");
    let cache_dir = directory.path().join("cache");
    let cache_dir = cache_dir.to_str().unwrap();

    // Two real `bbs` processes start simultaneously on one cold store and
    // race every write. The store's claim/atomic-rename discipline must
    // keep the result indistinguishable from a serial fill.
    let spawn = || {
        Command::new(env!("CARGO_BIN_EXE_bbs"))
            .args([
                "run",
                "--suite",
                "smoke",
                "--cache-dir",
                cache_dir,
                "--quiet",
            ])
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("bbs spawns")
    };
    let mut first = spawn();
    let mut second = spawn();
    assert!(first.wait().expect("first racer exits").success());
    assert!(second.wait().expect("second racer exits").success());

    let stats = bbs(&["cache", "stats", "--cache-dir", cache_dir], &[]);
    assert!(
        stats.contains("8 entries (8 feasible, 0 infeasible)"),
        "stdout: {stats}"
    );
    // A third, warm process finds every solve on disk — the racers lost
    // no entries and corrupted none.
    let warm = bbs(
        &[
            "run",
            "--suite",
            "smoke",
            "--cache-dir",
            cache_dir,
            "--json",
            "-",
            "--quiet",
        ],
        &[],
    );
    let timing = bbs(&["run", "--suite", "smoke", "--cache-dir", cache_dir], &[]);
    assert!(
        timing.contains("/ 0 fresh solves /"),
        "warm run should solve nothing, stdout: {timing}"
    );
    // And its report matches a store-free run byte for byte.
    let reference = bbs(&["run", "--suite", "smoke", "--json", "-", "--quiet"], &[]);
    assert_eq!(warm, reference);
}

#[test]
fn cache_stats_json_emits_the_shared_stats_snapshot() {
    use bbs_engine::StatsSnapshot;

    let directory = TempDir::new("stats-json");
    let cache_dir = directory.path().join("cache");
    let cache_dir = cache_dir.to_str().unwrap();
    bbs(
        &[
            "run",
            "--suite",
            "smoke",
            "--cache-dir",
            cache_dir,
            "--quiet",
        ],
        &[],
    );

    let text = bbs(&["cache", "stats", "--json", "--cache-dir", cache_dir], &[]);
    // The output is the serve protocol's stats object — same serializer,
    // same schema — restricted to the store section an offline CLI has.
    let snapshot = StatsSnapshot::from_json(&text).expect("stats --json parses");
    // Schema 3 added the session-reap and remote-breaker counters.
    assert_eq!(snapshot.schema, 3);
    assert!(snapshot.queue.is_none());
    assert!(snapshot.engine.is_none());
    assert!(snapshot.cache.is_none());
    assert!(snapshot.sessions.is_none());
    let store = snapshot.store.expect("store section present");
    assert_eq!(store.entries, 8);
    assert_eq!(store.feasible, 8);
    assert_eq!(store.infeasible, 0);
    assert_eq!(store.corrupt, 0);
    assert!(store.total_bytes > 0);
    assert!(store.directory.ends_with("cache"));
    // A freshly-written store is all-v2, and the logical (uncompressed)
    // size is tracked separately from the on-disk size.
    assert_eq!(store.v1_entries, 0);
    assert_eq!(store.v2_entries, 8);
    assert!(store.logical_bytes > 0);
    // This invocation only scanned; it moved no traffic.
    assert_eq!(store.disk_hits, 0);
    assert_eq!(store.fresh_solves, 0);
    assert_eq!(store.stored, 0);
    assert_eq!(store.remote_hits, 0);
}
