//! Periodic admissible schedules (PAS).
//!
//! Following Reiter's classic result, an SRDF graph admits a periodic
//! schedule `σ(v, k) = s(v) + (k−1)·ϕ` iff the start-time offsets satisfy
//! `s(vj) ≥ s(vi) + ρ(vi) − δ(eij)·ϕ` for every queue. For a fixed period
//! `ϕ` this is a system of difference constraints, solvable by a longest
//! path computation (Bellman–Ford); the smallest feasible period is the
//! maximum cycle ratio of the graph.

use crate::graph::SrdfGraph;

/// Result of a PAS feasibility check for a fixed period.
#[derive(Debug, Clone, PartialEq)]
pub enum PasResult {
    /// A schedule exists; the vector contains one start-time offset per
    /// actor (indexed by actor id). Offsets are normalised so the smallest
    /// is zero.
    Feasible(Vec<f64>),
    /// No schedule with the requested period exists: a cycle's total firing
    /// duration exceeds the token count times the period.
    Infeasible,
}

impl PasResult {
    /// Returns `true` for [`PasResult::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, PasResult::Feasible(_))
    }

    /// The start times, if feasible.
    pub fn start_times(&self) -> Option<&[f64]> {
        match self {
            PasResult::Feasible(s) => Some(s),
            PasResult::Infeasible => None,
        }
    }
}

/// Checks whether a periodic admissible schedule with the given period
/// exists and, if so, returns start-time offsets realising it.
///
/// # Panics
///
/// Panics if `period` is not strictly positive and finite.
pub fn periodic_schedule(graph: &SrdfGraph, period: f64) -> PasResult {
    assert!(
        period.is_finite() && period > 0.0,
        "schedule period must be positive and finite"
    );
    let n = graph.num_actors();
    if n == 0 {
        return PasResult::Feasible(Vec::new());
    }
    // Difference constraints: s(vj) − s(vi) ≥ ρ(vi) − δ(e)·period.
    // Longest-path Bellman–Ford from an implicit super-source (all zeros).
    let mut start = vec![0.0f64; n];
    let edges: Vec<(usize, usize, f64)> = graph
        .queues()
        .map(|(_, q)| {
            (
                q.source().index(),
                q.target().index(),
                graph.actor(q.source()).firing_duration() - q.tokens() as f64 * period,
            )
        })
        .collect();

    // Relax |V| times; a further improvement afterwards means a positive
    // cycle exists, i.e. the period is infeasible. A small tolerance keeps
    // zero-weight cycles (which are legitimately tight) from being flagged
    // by floating-point noise.
    let tol = 1e-9 * (1.0 + period);
    let mut changed = false;
    for _ in 0..n {
        changed = false;
        for &(u, v, w) in &edges {
            if start[u] + w > start[v] + tol {
                start[v] = start[u] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if changed {
        // One more full pass confirmed an improvement after |V| rounds.
        let mut improvable = false;
        for &(u, v, w) in &edges {
            if start[u] + w > start[v] + tol {
                improvable = true;
                break;
            }
        }
        if improvable {
            return PasResult::Infeasible;
        }
    }
    // Normalise so the earliest start is zero.
    let min = start.iter().copied().fold(f64::INFINITY, f64::min);
    for s in &mut start {
        *s -= min;
    }
    PasResult::Feasible(start)
}

/// Verifies explicitly that the start times satisfy every PAS constraint for
/// the given period (used by tests and by the mapping verifier).
pub fn verify_schedule(graph: &SrdfGraph, period: f64, start_times: &[f64], tol: f64) -> bool {
    if start_times.len() != graph.num_actors() {
        return false;
    }
    graph.queues().all(|(_, q)| {
        let lhs = start_times[q.target().index()];
        let rhs = start_times[q.source().index()] + graph.actor(q.source()).firing_duration()
            - q.tokens() as f64 * period;
        lhs + tol >= rhs
    })
}

/// Smallest period (maximum cycle ratio) for which a PAS exists, computed by
/// bisection over [`periodic_schedule`]. Returns `None` when no finite
/// period works (the graph has a token-free cycle with positive duration).
///
/// The result is accurate to `tolerance` (absolute).
///
/// # Panics
///
/// Panics if `tolerance` is not strictly positive.
pub fn minimum_feasible_period(graph: &SrdfGraph, tolerance: f64) -> Option<f64> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    if graph.num_actors() == 0 || graph.num_queues() == 0 {
        return Some(0.0_f64.max(tolerance));
    }

    // Upper bound: the sum of all firing durations (padded) is always at
    // least the maximum cycle ratio of a schedulable graph; if even that is
    // infeasible the graph has a token-free cycle with positive duration and
    // cannot be scheduled periodically at any period.
    let total_duration: f64 = graph
        .actors()
        .map(|(_, a)| a.firing_duration())
        .sum::<f64>()
        .max(tolerance);
    let mut hi = total_duration * 2.0 + 1.0;
    if !periodic_schedule(graph, hi).is_feasible() {
        return None;
    }
    let mut lo = 0.0f64;
    while hi - lo > tolerance {
        let mid = 0.5 * (hi + lo);
        if mid <= 0.0 {
            break;
        }
        if periodic_schedule(graph, mid).is_feasible() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Actor, ActorId, Queue};
    use proptest::prelude::*;

    /// Two-actor cycle with durations 2 and 3 and `k` tokens on the back
    /// edge: maximum cycle ratio is (2+3)/k.
    fn cycle_graph(tokens: u64) -> SrdfGraph {
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 2.0));
        let b = g.add_actor(Actor::new("b", 3.0));
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, a, tokens));
        g
    }

    #[test]
    fn feasible_period_returns_valid_start_times() {
        let g = cycle_graph(1);
        match periodic_schedule(&g, 6.0) {
            PasResult::Feasible(s) => {
                assert!(verify_schedule(&g, 6.0, &s, 1e-9));
                assert!(s.contains(&0.0), "normalised to zero minimum");
            }
            PasResult::Infeasible => panic!("period 6 ≥ MCR 5 must be feasible"),
        }
    }

    #[test]
    fn infeasible_period_is_rejected() {
        let g = cycle_graph(1);
        assert!(!periodic_schedule(&g, 4.0).is_feasible());
        assert!(periodic_schedule(&g, 5.0).is_feasible());
    }

    #[test]
    fn tokens_relax_the_constraint() {
        let g = cycle_graph(2);
        // MCR = 5/2 = 2.5.
        assert!(periodic_schedule(&g, 2.5).is_feasible());
        assert!(!periodic_schedule(&g, 2.4).is_feasible());
    }

    #[test]
    fn minimum_period_matches_cycle_ratio() {
        for tokens in 1..=4u64 {
            let g = cycle_graph(tokens);
            let mcr = minimum_feasible_period(&g, 1e-6).unwrap();
            let expected = 5.0 / tokens as f64;
            assert!(
                (mcr - expected).abs() < 1e-4,
                "tokens={tokens}: got {mcr}, expected {expected}"
            );
        }
    }

    #[test]
    fn deadlocked_graph_has_no_period() {
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 1.0));
        let b = g.add_actor(Actor::new("b", 1.0));
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, a, 0));
        assert_eq!(minimum_feasible_period(&g, 1e-6), None);
        assert!(!periodic_schedule(&g, 100.0).is_feasible());
    }

    #[test]
    fn acyclic_graph_always_feasible() {
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 10.0));
        let b = g.add_actor(Actor::new("b", 1.0));
        g.add_queue(Queue::new(a, b, 0));
        // Any positive period admits a PAS for an acyclic graph.
        assert!(periodic_schedule(&g, 0.001).is_feasible());
        let s = periodic_schedule(&g, 1.0);
        let times = s.start_times().unwrap();
        // b must start at least 10 after a.
        assert!(times[b.index()] >= times[a.index()] + 10.0 - 1e-9);
    }

    #[test]
    fn verify_schedule_rejects_bad_lengths_and_violations() {
        let g = cycle_graph(1);
        assert!(!verify_schedule(&g, 6.0, &[0.0], 1e-9));
        assert!(!verify_schedule(&g, 6.0, &[0.0, 0.0], 1e-9));
    }

    #[test]
    fn empty_graph_is_trivially_schedulable() {
        let g = SrdfGraph::new();
        assert!(periodic_schedule(&g, 1.0).is_feasible());
        assert!(minimum_feasible_period(&g, 1e-6).is_some());
    }

    #[test]
    fn self_loop_bounds_period_by_duration() {
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 7.0));
        g.add_queue(Queue::new(a, a, 1));
        let mcr = minimum_feasible_period(&g, 1e-6).unwrap();
        assert!((mcr - 7.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let g = cycle_graph(1);
        let _ = periodic_schedule(&g, 0.0);
    }

    proptest! {
        #[test]
        fn prop_monotonic_in_duration(d1 in 0.1f64..10.0, d2 in 0.1f64..10.0,
                                      tokens in 1u64..5) {
            // Scaling durations down can never increase the minimum period
            // (temporal monotonicity of SRDF graphs).
            let mut g = SrdfGraph::new();
            let a = g.add_actor(Actor::new("a", d1));
            let b = g.add_actor(Actor::new("b", d2));
            g.add_queue(Queue::new(a, b, 0));
            g.add_queue(Queue::new(b, a, tokens));
            let full = minimum_feasible_period(&g, 1e-6).unwrap();
            let reduced = minimum_feasible_period(&g.with_scaled_durations(0.5), 1e-6).unwrap();
            prop_assert!(reduced <= full + 1e-6);
        }

        #[test]
        fn prop_more_tokens_never_hurt(d1 in 0.1f64..10.0, d2 in 0.1f64..10.0,
                                       tokens in 1u64..4) {
            let make = |t: u64| {
                let mut g = SrdfGraph::new();
                let a = g.add_actor(Actor::new("a", d1));
                let b = g.add_actor(Actor::new("b", d2));
                g.add_queue(Queue::new(a, b, 0));
                g.add_queue(Queue::new(b, a, t));
                g
            };
            let fewer = minimum_feasible_period(&make(tokens), 1e-6).unwrap();
            let more = minimum_feasible_period(&make(tokens + 1), 1e-6).unwrap();
            prop_assert!(more <= fewer + 1e-6);
        }

        #[test]
        fn prop_feasible_period_yields_verifiable_schedule(
            d1 in 0.1f64..5.0, d2 in 0.1f64..5.0, d3 in 0.1f64..5.0, tokens in 1u64..4) {
            // Three-actor ring.
            let mut g = SrdfGraph::new();
            let a = g.add_actor(Actor::new("a", d1));
            let b = g.add_actor(Actor::new("b", d2));
            let c = g.add_actor(Actor::new("c", d3));
            g.add_queue(Queue::new(a, b, 0));
            g.add_queue(Queue::new(b, c, 0));
            g.add_queue(Queue::new(c, a, tokens));
            let mcr = minimum_feasible_period(&g, 1e-7).unwrap();
            let schedule = periodic_schedule(&g, mcr + 1e-6);
            prop_assert!(schedule.is_feasible());
            let times = schedule.start_times().unwrap();
            prop_assert!(verify_schedule(&g, mcr + 1e-6, times, 1e-6));
            // The analytic MCR of the ring is (d1+d2+d3)/tokens.
            let expected = (d1 + d2 + d3) / tokens as f64;
            prop_assert!((mcr - expected).abs() < 1e-4 * (1.0 + expected));
        }
    }

    #[test]
    fn start_times_usable_against_actor_ids() {
        let g = cycle_graph(1);
        let s = periodic_schedule(&g, 10.0);
        let times = s.start_times().unwrap();
        assert_eq!(times.len(), 2);
        let _ = times[ActorId::new(0).index()];
    }
}
