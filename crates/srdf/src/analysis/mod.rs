//! Throughput and schedule analysis of SRDF graphs.
//!
//! * [`maximum_cycle_ratio`] / [`critical_cycle`] — which cycle limits the
//!   achievable period, and by how much;
//! * [`periodic_schedule`] / [`minimum_feasible_period`] — existence and
//!   construction of periodic admissible schedules (Reiter's condition,
//!   Constraint 1 of the paper);
//! * [`strongly_connected_components`] / [`has_token_free_cycle`] —
//!   structural sanity checks.

mod mcr;
mod pas;
mod scc;

pub use mcr::{critical_cycle, maximum_cycle_ratio, CycleRatio};
pub use pas::{minimum_feasible_period, periodic_schedule, verify_schedule, PasResult};
pub use scc::{has_token_free_cycle, strongly_connected_components};
