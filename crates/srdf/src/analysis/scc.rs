//! Strongly connected components and structural deadlock detection.

use crate::graph::{ActorId, SrdfGraph};

/// Computes the strongly connected components of the graph using Tarjan's
/// algorithm (iterative formulation). Components are returned in reverse
/// topological order of the condensation; each component lists its actors in
/// discovery order.
pub fn strongly_connected_components(graph: &SrdfGraph) -> Vec<Vec<ActorId>> {
    let n = graph.num_actors();
    let mut adjacency = vec![Vec::new(); n];
    for (_, q) in graph.queues() {
        adjacency[q.source().index()].push(q.target().index());
    }

    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut components = Vec::new();
    let mut next_index = 0usize;

    // Iterative DFS frame: (node, next child position).
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adjacency[v].len() {
                let w = adjacency[v][*child];
                *child += 1;
                if index[w] == UNVISITED {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(ActorId::new(w));
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Returns `true` when the graph contains a cycle without any initial
/// tokens, which means self-timed execution deadlocks (no actor on that
/// cycle can ever fire).
pub fn has_token_free_cycle(graph: &SrdfGraph) -> bool {
    // Consider only the sub-graph of token-free queues; a deadlock exists
    // iff that sub-graph has a cycle, which we detect via Kahn's algorithm.
    let n = graph.num_actors();
    let mut indegree = vec![0usize; n];
    let mut adjacency = vec![Vec::new(); n];
    for (_, q) in graph.queues() {
        if q.tokens() == 0 {
            adjacency[q.source().index()].push(q.target().index());
            indegree[q.target().index()] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut removed = 0usize;
    while let Some(v) = queue.pop() {
        removed += 1;
        for &w in &adjacency[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    removed != n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Actor, Queue};

    fn actor(g: &mut SrdfGraph, name: &str) -> ActorId {
        g.add_actor(Actor::new(name, 1.0))
    }

    #[test]
    fn single_actor_no_edges() {
        let mut g = SrdfGraph::new();
        actor(&mut g, "a");
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert!(!has_token_free_cycle(&g));
    }

    #[test]
    fn two_actor_cycle_is_one_component() {
        let mut g = SrdfGraph::new();
        let a = actor(&mut g, "a");
        let b = actor(&mut g, "b");
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, a, 1));
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 2);
        assert!(!has_token_free_cycle(&g));
    }

    #[test]
    fn chain_has_singleton_components() {
        let mut g = SrdfGraph::new();
        let a = actor(&mut g, "a");
        let b = actor(&mut g, "b");
        let c = actor(&mut g, "c");
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, c, 0));
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert!(!has_token_free_cycle(&g));
    }

    #[test]
    fn token_free_cycle_is_detected() {
        let mut g = SrdfGraph::new();
        let a = actor(&mut g, "a");
        let b = actor(&mut g, "b");
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, a, 0));
        assert!(has_token_free_cycle(&g));
    }

    #[test]
    fn token_free_self_loop_is_detected() {
        let mut g = SrdfGraph::new();
        let a = actor(&mut g, "a");
        g.add_queue(Queue::new(a, a, 0));
        assert!(has_token_free_cycle(&g));
        let mut g2 = SrdfGraph::new();
        let a2 = actor(&mut g2, "a");
        g2.add_queue(Queue::new(a2, a2, 1));
        assert!(!has_token_free_cycle(&g2));
    }

    #[test]
    fn nested_structure_components() {
        // a <-> b , c <-> d, b -> c: two components of size 2.
        let mut g = SrdfGraph::new();
        let a = actor(&mut g, "a");
        let b = actor(&mut g, "b");
        let c = actor(&mut g, "c");
        let d = actor(&mut g, "d");
        g.add_queue(Queue::new(a, b, 1));
        g.add_queue(Queue::new(b, a, 1));
        g.add_queue(Queue::new(c, d, 1));
        g.add_queue(Queue::new(d, c, 1));
        g.add_queue(Queue::new(b, c, 0));
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.iter().all(|comp| comp.len() == 2));
    }
}
