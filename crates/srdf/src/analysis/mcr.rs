//! Maximum cycle ratio analysis.
//!
//! The throughput of an SRDF graph is the reciprocal of its maximum cycle
//! ratio (MCR): the maximum over all cycles of the total firing duration
//! divided by the total number of initial tokens on the cycle. The smallest
//! period admitting a periodic admissible schedule equals the MCR.

use crate::analysis::pas::{minimum_feasible_period, periodic_schedule};
use crate::analysis::scc::has_token_free_cycle;
use crate::graph::{ActorId, SrdfGraph};

/// Outcome of the maximum cycle ratio analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CycleRatio {
    /// The graph has cycles and the given finite maximum cycle ratio; a
    /// periodic schedule exists for any period ≥ this value.
    Finite(f64),
    /// The graph has no cycles at all: any positive period is feasible and
    /// the throughput is limited only by the pipeline sources.
    Acyclic,
    /// The graph contains a cycle without initial tokens whose total firing
    /// duration is positive: self-timed execution deadlocks and no periodic
    /// schedule exists.
    Deadlocked,
}

impl CycleRatio {
    /// The finite ratio, if any.
    pub fn value(&self) -> Option<f64> {
        match self {
            CycleRatio::Finite(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns `true` when a periodic schedule with the given period exists
    /// according to this analysis result.
    pub fn admits_period(&self, period: f64) -> bool {
        match self {
            CycleRatio::Finite(v) => period + 1e-12 >= *v,
            CycleRatio::Acyclic => period > 0.0,
            CycleRatio::Deadlocked => false,
        }
    }
}

/// Computes the maximum cycle ratio of the graph to the given absolute
/// tolerance, using the parametric Bellman–Ford (Lawler) bisection on top of
/// the PAS feasibility test.
///
/// # Panics
///
/// Panics if `tolerance` is not strictly positive.
pub fn maximum_cycle_ratio(graph: &SrdfGraph, tolerance: f64) -> CycleRatio {
    assert!(tolerance > 0.0, "tolerance must be positive");
    if !has_any_cycle(graph) {
        return CycleRatio::Acyclic;
    }
    if has_token_free_cycle(graph) {
        // Distinguish a harmless zero-duration token-free cycle from a real
        // structural deadlock by probing a generous period.
        let total: f64 = graph.actors().map(|(_, a)| a.firing_duration()).sum();
        if !periodic_schedule(graph, total * 2.0 + 1.0).is_feasible() {
            return CycleRatio::Deadlocked;
        }
    }
    match minimum_feasible_period(graph, tolerance) {
        Some(v) => CycleRatio::Finite(v),
        None => CycleRatio::Deadlocked,
    }
}

/// Finds a critical cycle: a cycle whose ratio is within `tolerance` of the
/// maximum cycle ratio. Returns the actors along the cycle in order, or
/// `None` when the graph is acyclic or deadlocked.
///
/// Critical cycles are the actionable output of a throughput analysis: they
/// tell the designer which tasks/buffers limit the achievable period.
pub fn critical_cycle(graph: &SrdfGraph, tolerance: f64) -> Option<Vec<ActorId>> {
    let mcr = match maximum_cycle_ratio(graph, tolerance) {
        CycleRatio::Finite(v) => v,
        _ => return None,
    };
    // At a period slightly below the MCR the constraint graph has a positive
    // cycle; walk predecessor pointers of a longest-path relaxation to
    // recover it.
    let period = (mcr - 2.0 * tolerance).max(tolerance * 0.5);
    let n = graph.num_actors();
    let edges: Vec<(usize, usize, f64)> = graph
        .queues()
        .map(|(_, q)| {
            (
                q.source().index(),
                q.target().index(),
                graph.actor(q.source()).firing_duration() - q.tokens() as f64 * period,
            )
        })
        .collect();
    let mut dist = vec![0.0f64; n];
    let mut pred = vec![usize::MAX; n];
    let mut last_updated = usize::MAX;
    for _ in 0..=n {
        last_updated = usize::MAX;
        for &(u, v, w) in &edges {
            if dist[u] + w > dist[v] + 1e-12 {
                dist[v] = dist[u] + w;
                pred[v] = u;
                last_updated = v;
            }
        }
        if last_updated == usize::MAX {
            break;
        }
    }
    if last_updated == usize::MAX {
        // Numerically no positive cycle was exposed (extremely tight MCR);
        // fall back to reporting nothing rather than an arbitrary cycle.
        return None;
    }
    // Walk back n steps to make sure we are inside the cycle, then collect.
    let mut v = last_updated;
    for _ in 0..n {
        v = pred[v];
    }
    let mut cycle = vec![v];
    let mut cur = pred[v];
    while cur != v {
        cycle.push(cur);
        cur = pred[cur];
    }
    cycle.reverse();
    Some(cycle.into_iter().map(ActorId::new).collect())
}

/// Returns `true` when the graph has at least one directed cycle
/// (self-loops included).
fn has_any_cycle(graph: &SrdfGraph) -> bool {
    // Kahn's algorithm on the full edge set: leftovers mean a cycle.
    let n = graph.num_actors();
    let mut indegree = vec![0usize; n];
    let mut adjacency = vec![Vec::new(); n];
    for (_, q) in graph.queues() {
        adjacency[q.source().index()].push(q.target().index());
        indegree[q.target().index()] += 1;
    }
    let mut stack: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut removed = 0usize;
    while let Some(v) = stack.pop() {
        removed += 1;
        for &w in &adjacency[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                stack.push(w);
            }
        }
    }
    removed != n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Actor, Queue};

    fn ring(durations: &[f64], tokens: u64) -> SrdfGraph {
        let mut g = SrdfGraph::new();
        let ids: Vec<ActorId> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| g.add_actor(Actor::new(format!("v{i}"), d)))
            .collect();
        for i in 0..ids.len() {
            let next = (i + 1) % ids.len();
            let t = if next == 0 { tokens } else { 0 };
            g.add_queue(Queue::new(ids[i], ids[next], t));
        }
        g
    }

    #[test]
    fn ratio_of_simple_ring() {
        let g = ring(&[2.0, 3.0, 5.0], 2);
        match maximum_cycle_ratio(&g, 1e-7) {
            CycleRatio::Finite(v) => assert!((v - 5.0).abs() < 1e-4),
            other => panic!("expected finite ratio, got {other:?}"),
        }
    }

    #[test]
    fn acyclic_graph_detected() {
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 1.0));
        let b = g.add_actor(Actor::new("b", 2.0));
        g.add_queue(Queue::new(a, b, 0));
        assert_eq!(maximum_cycle_ratio(&g, 1e-6), CycleRatio::Acyclic);
        assert!(CycleRatio::Acyclic.admits_period(0.5));
        assert!(critical_cycle(&g, 1e-6).is_none());
    }

    #[test]
    fn deadlock_detected() {
        let g = ring(&[1.0, 1.0], 0);
        assert_eq!(maximum_cycle_ratio(&g, 1e-6), CycleRatio::Deadlocked);
        assert!(!CycleRatio::Deadlocked.admits_period(1e9));
        assert!(critical_cycle(&g, 1e-6).is_none());
    }

    #[test]
    fn admits_period_thresholds() {
        let g = ring(&[2.0, 2.0], 1);
        let ratio = maximum_cycle_ratio(&g, 1e-7);
        assert!(ratio.admits_period(4.1));
        assert!(!ratio.admits_period(3.9));
        assert!((ratio.value().unwrap() - 4.0).abs() < 1e-4);
    }

    #[test]
    fn critical_cycle_is_the_binding_one() {
        // Two nested cycles: a slow one (a <-> b, ratio 10) and a fast one
        // (a self-loop of duration 1).
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 4.0));
        let b = g.add_actor(Actor::new("b", 6.0));
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, a, 1));
        g.add_queue(Queue::new(a, a, 1));
        let cycle = critical_cycle(&g, 1e-7).expect("cyclic graph has a critical cycle");
        // The critical cycle must include actor b (the a<->b cycle dominates).
        assert!(cycle.contains(&b));
        let ratio = maximum_cycle_ratio(&g, 1e-7).value().unwrap();
        assert!((ratio - 10.0).abs() < 1e-4);
    }

    #[test]
    fn self_loop_only_graph() {
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 3.0));
        g.add_queue(Queue::new(a, a, 1));
        assert!((maximum_cycle_ratio(&g, 1e-7).value().unwrap() - 3.0).abs() < 1e-4);
        let cycle = critical_cycle(&g, 1e-7).unwrap();
        assert_eq!(cycle, vec![a]);
    }

    #[test]
    fn zero_duration_token_free_cycle_is_not_deadlock() {
        let g = ring(&[0.0, 0.0], 0);
        // All durations are zero, so the token-free cycle never blocks.
        match maximum_cycle_ratio(&g, 1e-6) {
            CycleRatio::Finite(v) => assert!(v < 1e-3),
            other => panic!("expected a (tiny) finite ratio, got {other:?}"),
        }
    }

    #[test]
    fn multiple_token_cycle_ratio_scales() {
        for tokens in 1..=5u64 {
            let g = ring(&[1.0, 2.0, 3.0, 4.0], tokens);
            let v = maximum_cycle_ratio(&g, 1e-7).value().unwrap();
            assert!((v - 10.0 / tokens as f64).abs() < 1e-4);
        }
    }
}
