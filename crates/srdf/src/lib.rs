//! Single-rate dataflow (SRDF) graphs and their temporal analysis.
//!
//! SRDF graphs — also known as homogeneous synchronous dataflow graphs,
//! computation graphs or marked graphs — are the analysis model of the
//! paper: every task of a task graph is modelled by two actors, every FIFO
//! buffer by a pair of opposite queues, and the throughput constraint
//! becomes the existence of a periodic admissible schedule (PAS) with the
//! required period.
//!
//! The crate provides:
//!
//! * the graph data structure ([`SrdfGraph`], [`Actor`], [`Queue`]);
//! * throughput analysis ([`analysis::maximum_cycle_ratio`],
//!   [`analysis::minimum_feasible_period`], [`analysis::critical_cycle`]);
//! * PAS construction and verification ([`analysis::periodic_schedule`],
//!   [`analysis::verify_schedule`]);
//! * self-timed execution ([`simulate_self_timed`]) used to cross-validate
//!   the analytic results and to demonstrate the temporal monotonicity that
//!   the paper's conservative rounding argument relies on.
//!
//! # Example
//!
//! ```
//! use bbs_srdf::{Actor, Queue, SrdfGraph};
//! use bbs_srdf::analysis::{maximum_cycle_ratio, CycleRatio};
//!
//! // Two actors in a cycle with 2 tokens: MCR = (2 + 3) / 2 = 2.5.
//! let mut g = SrdfGraph::new();
//! let a = g.add_actor(Actor::new("a", 2.0));
//! let b = g.add_actor(Actor::new("b", 3.0));
//! g.add_queue(Queue::new(a, b, 0));
//! g.add_queue(Queue::new(b, a, 2));
//! match maximum_cycle_ratio(&g, 1e-7) {
//!     CycleRatio::Finite(v) => assert!((v - 2.5).abs() < 1e-4),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod graph;
mod simulate;

pub use graph::{Actor, ActorId, Queue, QueueId, SrdfGraph};
pub use simulate::{simulate_self_timed, SelfTimedTrace, SimulationError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SrdfGraph>();
        assert_send_sync::<Actor>();
        assert_send_sync::<Queue>();
        assert_send_sync::<SelfTimedTrace>();
        assert_send_sync::<SimulationError>();
    }

    #[test]
    fn crate_example_runs() {
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 2.0));
        let b = g.add_actor(Actor::new("b", 3.0));
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, a, 2));
        match analysis::maximum_cycle_ratio(&g, 1e-7) {
            analysis::CycleRatio::Finite(v) => assert!((v - 2.5).abs() < 1e-4),
            other => panic!("unexpected {other:?}"),
        }
    }
}
