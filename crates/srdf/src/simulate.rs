//! Self-timed execution of SRDF graphs.
//!
//! In self-timed execution every actor fires as soon as all of its input
//! queues hold at least one token. For strongly consistent SRDF graphs the
//! execution becomes periodic (possibly after a transient) and its long-run
//! period equals the maximum cycle ratio; because SRDF graphs are
//! temporally monotonic, any schedule derived from *worst-case* firing
//! durations is an upper bound on arrival times in the real system. The
//! simulator here is used to cross-validate the analytic results of
//! [`crate::analysis`] and to measure transients.

use crate::graph::{ActorId, SrdfGraph};

/// Result of simulating a number of iterations of self-timed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTimedTrace {
    /// `start[k][v]` is the start time of the `k`-th firing (0-based) of
    /// actor `v`.
    start_times: Vec<Vec<f64>>,
    /// Number of simulated iterations.
    iterations: usize,
}

impl SelfTimedTrace {
    /// Number of simulated iterations (firings per actor).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Start time of the `k`-th firing (0-based) of an actor.
    ///
    /// # Panics
    ///
    /// Panics if `k` or the actor index is out of range.
    pub fn start_time(&self, actor: ActorId, k: usize) -> f64 {
        self.start_times[k][actor.index()]
    }

    /// The average period of an actor measured over the second half of the
    /// trace (skipping the transient). Returns `None` for traces shorter
    /// than four iterations.
    pub fn measured_period(&self, actor: ActorId) -> Option<f64> {
        if self.iterations < 4 {
            return None;
        }
        let half = self.iterations / 2;
        let first = self.start_times[half][actor.index()];
        let last = self.start_times[self.iterations - 1][actor.index()];
        Some((last - first) / (self.iterations - 1 - half) as f64)
    }

    /// The maximum over all actors of [`SelfTimedTrace::measured_period`].
    pub fn measured_graph_period(&self) -> Option<f64> {
        let n = self.start_times.first()?.len();
        (0..n)
            .map(|v| self.measured_period(ActorId::new(v)))
            .collect::<Option<Vec<_>>>()
            .map(|periods| periods.into_iter().fold(0.0f64, f64::max))
    }
}

/// Error returned when the graph cannot be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulationError {
    /// The graph has a token-free cycle: no actor on that cycle can fire.
    Deadlock,
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::Deadlock => write!(f, "graph deadlocks (token-free cycle)"),
        }
    }
}

impl std::error::Error for SimulationError {}

/// Simulates `iterations` firings of every actor under self-timed execution
/// and returns the start times.
///
/// The `k`-th firing of actor `v` starts when, for every input queue
/// `e = (u → v)` with `δ(e)` initial tokens, the `(k − δ(e))`-th firing of
/// `u` has finished (no constraint when `k < δ(e)`). This is the standard
/// max-plus recurrence for marked graphs with unbounded auto-concurrency;
/// serialisation is expressed in the graph itself through self-loops, which
/// is exactly how the budget-scheduler model of the paper uses it.
///
/// # Errors
///
/// Returns [`SimulationError::Deadlock`] when the graph has a token-free
/// cycle.
///
/// # Panics
///
/// Panics if `iterations` is zero.
pub fn simulate_self_timed(
    graph: &SrdfGraph,
    iterations: usize,
) -> Result<SelfTimedTrace, SimulationError> {
    assert!(iterations > 0, "need at least one iteration");
    if crate::analysis::has_token_free_cycle(graph) {
        return Err(SimulationError::Deadlock);
    }
    let n = graph.num_actors();
    let mut start_times: Vec<Vec<f64>> = Vec::with_capacity(iterations);

    // Dependency order for same-iteration (zero-token) constraints.
    let order = zero_token_topological_order(graph);

    for k in 0..iterations {
        let mut current = vec![0.0f64; n];
        for &v in &order {
            let mut earliest: f64 = 0.0;
            for qid in graph.input_queues(ActorId::new(v)) {
                let q = graph.queue(qid);
                let tokens = q.tokens() as usize;
                let producer = q.source().index();
                let finish = if tokens > k {
                    // The initial tokens cover this firing: no constraint.
                    continue;
                } else {
                    let producer_iteration = k - tokens;
                    let producer_start = if producer_iteration == k {
                        current[producer]
                    } else {
                        start_times[producer_iteration][producer]
                    };
                    producer_start + graph.actor(q.source()).firing_duration()
                };
                earliest = earliest.max(finish);
            }
            current[v] = earliest;
        }
        start_times.push(current);
    }
    Ok(SelfTimedTrace {
        start_times,
        iterations,
    })
}

/// Topological order of the sub-graph of zero-token queues. The graph is
/// guaranteed to be acyclic on those edges once deadlock has been excluded.
fn zero_token_topological_order(graph: &SrdfGraph) -> Vec<usize> {
    let n = graph.num_actors();
    let mut indegree = vec![0usize; n];
    let mut adjacency = vec![Vec::new(); n];
    for (_, q) in graph.queues() {
        if q.tokens() == 0 {
            adjacency[q.source().index()].push(q.target().index());
            indegree[q.target().index()] += 1;
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = stack.pop() {
        order.push(v);
        for &w in &adjacency[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                stack.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "deadlock must have been excluded");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{maximum_cycle_ratio, CycleRatio};
    use crate::graph::{Actor, Queue};
    use proptest::prelude::*;

    fn producer_consumer(buffer_tokens: u64) -> SrdfGraph {
        // a -> b (0 tokens), b -> a (buffer_tokens), self-loops on both.
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 2.0));
        let b = g.add_actor(Actor::new("b", 3.0));
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, a, buffer_tokens));
        g.add_queue(Queue::new(a, a, 1));
        g.add_queue(Queue::new(b, b, 1));
        g
    }

    #[test]
    fn deadlock_is_reported() {
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 1.0));
        let b = g.add_actor(Actor::new("b", 1.0));
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, a, 0));
        assert_eq!(simulate_self_timed(&g, 10), Err(SimulationError::Deadlock));
        assert!(!SimulationError::Deadlock.to_string().is_empty());
    }

    #[test]
    fn first_firings_are_causally_ordered() {
        let g = producer_consumer(4);
        let trace = simulate_self_timed(&g, 8).unwrap();
        let a = ActorId::new(0);
        let b = ActorId::new(1);
        // b's first firing waits for a's first finish (duration 2).
        assert_eq!(trace.start_time(a, 0), 0.0);
        assert_eq!(trace.start_time(b, 0), 2.0);
        // a's second firing is limited by its self-loop (duration 2).
        assert_eq!(trace.start_time(a, 1), 2.0);
        assert_eq!(trace.iterations(), 8);
    }

    #[test]
    fn measured_period_matches_mcr() {
        for tokens in 1..=4u64 {
            let g = producer_consumer(tokens);
            let trace = simulate_self_timed(&g, 64).unwrap();
            let measured = trace.measured_graph_period().unwrap();
            let analytic = match maximum_cycle_ratio(&g, 1e-7) {
                CycleRatio::Finite(v) => v,
                other => panic!("unexpected {other:?}"),
            };
            assert!(
                (measured - analytic).abs() < 1e-6,
                "tokens={tokens}: measured {measured}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn start_times_are_monotone_in_durations() {
        // Temporal monotonicity: smaller firing durations can never lead to
        // later start times (checked on every firing of every actor).
        let g = producer_consumer(2);
        let faster = g.with_scaled_durations(0.5);
        let slow = simulate_self_timed(&g, 32).unwrap();
        let fast = simulate_self_timed(&faster, 32).unwrap();
        for k in 0..32 {
            for v in 0..g.num_actors() {
                let id = ActorId::new(v);
                assert!(fast.start_time(id, k) <= slow.start_time(id, k) + 1e-12);
            }
        }
    }

    #[test]
    fn short_trace_has_no_period_estimate() {
        let g = producer_consumer(1);
        let trace = simulate_self_timed(&g, 2).unwrap();
        assert_eq!(trace.measured_period(ActorId::new(0)), None);
        assert_eq!(trace.measured_graph_period(), None);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let g = producer_consumer(1);
        let _ = simulate_self_timed(&g, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_more_initial_tokens_never_delay(d1 in 0.5f64..4.0, d2 in 0.5f64..4.0,
                                                tokens in 1u64..4) {
            // Monotonicity in the number of initial tokens.
            let make = |t: u64| {
                let mut g = SrdfGraph::new();
                let a = g.add_actor(Actor::new("a", d1));
                let b = g.add_actor(Actor::new("b", d2));
                g.add_queue(Queue::new(a, b, 0));
                g.add_queue(Queue::new(b, a, t));
                g.add_queue(Queue::new(a, a, 1));
                g.add_queue(Queue::new(b, b, 1));
                g
            };
            let fewer = simulate_self_timed(&make(tokens), 16).unwrap();
            let more = simulate_self_timed(&make(tokens + 1), 16).unwrap();
            for k in 0..16 {
                for v in 0..2 {
                    let id = ActorId::new(v);
                    prop_assert!(more.start_time(id, k) <= fewer.start_time(id, k) + 1e-12);
                }
            }
        }

        #[test]
        fn prop_measured_period_never_exceeds_pas_period(
            d1 in 0.5f64..4.0, d2 in 0.5f64..4.0, tokens in 1u64..4) {
            // The self-timed execution is at least as fast as any periodic
            // schedule: measured period ≤ minimum feasible period + ε.
            let mut g = SrdfGraph::new();
            let a = g.add_actor(Actor::new("a", d1));
            let b = g.add_actor(Actor::new("b", d2));
            g.add_queue(Queue::new(a, b, 0));
            g.add_queue(Queue::new(b, a, tokens));
            g.add_queue(Queue::new(a, a, 1));
            g.add_queue(Queue::new(b, b, 1));
            let trace = simulate_self_timed(&g, 64).unwrap();
            let measured = trace.measured_graph_period().unwrap();
            let analytic = crate::analysis::minimum_feasible_period(&g, 1e-7).unwrap();
            prop_assert!(measured <= analytic + 1e-5);
        }
    }
}
