//! Single-rate dataflow graphs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an actor in an [`SrdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActorId(pub(crate) usize);

impl ActorId {
    /// Creates an identifier from a raw index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a queue (edge) in an [`SrdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueueId(pub(crate) usize);

impl QueueId {
    /// Creates an identifier from a raw index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An actor of a single-rate dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actor {
    name: String,
    firing_duration: f64,
}

impl Actor {
    /// Creates an actor with the given firing duration `ρ(v)`.
    ///
    /// # Panics
    ///
    /// Panics if the duration is negative or not finite.
    pub fn new(name: impl Into<String>, firing_duration: f64) -> Self {
        assert!(
            firing_duration.is_finite() && firing_duration >= 0.0,
            "firing duration must be non-negative and finite"
        );
        Self {
            name: name.into(),
            firing_duration,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Firing duration `ρ(v)`.
    pub fn firing_duration(&self) -> f64 {
        self.firing_duration
    }
}

/// A queue (edge) of a single-rate dataflow graph with its initial tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Queue {
    source: ActorId,
    target: ActorId,
    tokens: u64,
}

impl Queue {
    /// Creates a queue from `source` to `target` carrying `tokens` initial
    /// tokens `δ(e)`.
    pub fn new(source: ActorId, target: ActorId, tokens: u64) -> Self {
        Self {
            source,
            target,
            tokens,
        }
    }

    /// Producing actor.
    pub fn source(&self) -> ActorId {
        self.source
    }

    /// Consuming actor.
    pub fn target(&self) -> ActorId {
        self.target
    }

    /// Initial number of tokens `δ(e)`.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }
}

/// A single-rate dataflow (SRDF) graph, also known as a homogeneous SDF
/// graph, computation graph or marked graph.
///
/// Every actor produces one token on each outgoing queue and consumes one
/// token from each incoming queue per firing. The throughput of the graph is
/// governed by its maximum cycle ratio (total firing duration over total
/// tokens along a cycle).
///
/// # Example
///
/// ```
/// use bbs_srdf::{Actor, Queue, SrdfGraph};
///
/// let mut g = SrdfGraph::new();
/// let a = g.add_actor(Actor::new("a", 2.0));
/// let b = g.add_actor(Actor::new("b", 3.0));
/// g.add_queue(Queue::new(a, b, 0));
/// g.add_queue(Queue::new(b, a, 2));
/// assert_eq!(g.num_actors(), 2);
/// assert_eq!(g.num_queues(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SrdfGraph {
    actors: Vec<Actor>,
    queues: Vec<Queue>,
}

impl SrdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an actor, returning its identifier.
    pub fn add_actor(&mut self, actor: Actor) -> ActorId {
        let id = ActorId::new(self.actors.len());
        self.actors.push(actor);
        id
    }

    /// Adds a queue, returning its identifier.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist.
    pub fn add_queue(&mut self, queue: Queue) -> QueueId {
        assert!(
            queue.source().index() < self.actors.len()
                && queue.target().index() < self.actors.len(),
            "queue references an unknown actor"
        );
        let id = QueueId::new(self.queues.len());
        self.queues.push(queue);
        id
    }

    /// Number of actors.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Access an actor.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is unknown.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.index()]
    }

    /// Access a queue.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is unknown.
    pub fn queue(&self, id: QueueId) -> &Queue {
        &self.queues[id.index()]
    }

    /// Iterator over `(ActorId, &Actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (ActorId, &Actor)> {
        self.actors
            .iter()
            .enumerate()
            .map(|(i, a)| (ActorId::new(i), a))
    }

    /// Iterator over `(QueueId, &Queue)` pairs.
    pub fn queues(&self) -> impl Iterator<Item = (QueueId, &Queue)> {
        self.queues
            .iter()
            .enumerate()
            .map(|(i, q)| (QueueId::new(i), q))
    }

    /// Queues leaving the given actor.
    pub fn output_queues(&self, actor: ActorId) -> Vec<QueueId> {
        self.queues()
            .filter(|(_, q)| q.source() == actor)
            .map(|(id, _)| id)
            .collect()
    }

    /// Queues entering the given actor.
    pub fn input_queues(&self, actor: ActorId) -> Vec<QueueId> {
        self.queues()
            .filter(|(_, q)| q.target() == actor)
            .map(|(id, _)| id)
            .collect()
    }

    /// Total number of initial tokens in the graph (an invariant of marked
    /// graph execution: firings preserve the token count on every cycle).
    pub fn total_tokens(&self) -> u64 {
        self.queues.iter().map(Queue::tokens).sum()
    }

    /// Returns a copy of the graph with every firing duration scaled by
    /// `factor` (useful for monotonicity experiments: scaling durations down
    /// can never increase the maximum cycle ratio).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn with_scaled_durations(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative and finite"
        );
        let mut scaled = self.clone();
        for actor in &mut scaled.actors {
            actor.firing_duration *= factor;
        }
        scaled
    }
}

impl fmt::Display for SrdfGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SRDF graph with {} actors and {} queues",
            self.actors.len(),
            self.queues.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_actor_cycle() -> SrdfGraph {
        let mut g = SrdfGraph::new();
        let a = g.add_actor(Actor::new("a", 2.0));
        let b = g.add_actor(Actor::new("b", 3.0));
        g.add_queue(Queue::new(a, b, 0));
        g.add_queue(Queue::new(b, a, 2));
        g
    }

    #[test]
    fn construction_and_queries() {
        let g = two_actor_cycle();
        assert_eq!(g.num_actors(), 2);
        assert_eq!(g.num_queues(), 2);
        assert_eq!(g.actor(ActorId::new(0)).name(), "a");
        assert_eq!(g.actor(ActorId::new(1)).firing_duration(), 3.0);
        assert_eq!(g.queue(QueueId::new(1)).tokens(), 2);
        assert_eq!(g.total_tokens(), 2);
        assert!(g.to_string().contains("2 actors"));
        assert_eq!(format!("{}", ActorId::new(1)), "v1");
        assert_eq!(format!("{}", QueueId::new(0)), "e0");
    }

    #[test]
    fn adjacency_queries() {
        let g = two_actor_cycle();
        let a = ActorId::new(0);
        let b = ActorId::new(1);
        assert_eq!(g.output_queues(a), vec![QueueId::new(0)]);
        assert_eq!(g.input_queues(a), vec![QueueId::new(1)]);
        assert_eq!(g.output_queues(b), vec![QueueId::new(1)]);
        assert_eq!(g.input_queues(b), vec![QueueId::new(0)]);
    }

    #[test]
    fn scaled_durations() {
        let g = two_actor_cycle().with_scaled_durations(0.5);
        assert_eq!(g.actor(ActorId::new(0)).firing_duration(), 1.0);
        assert_eq!(g.actor(ActorId::new(1)).firing_duration(), 1.5);
    }

    #[test]
    #[should_panic(expected = "unknown actor")]
    fn add_queue_rejects_unknown_actor() {
        let mut g = SrdfGraph::new();
        g.add_actor(Actor::new("only", 1.0));
        g.add_queue(Queue::new(ActorId::new(0), ActorId::new(5), 0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn actor_rejects_negative_duration() {
        let _ = Actor::new("bad", -1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let g = two_actor_cycle();
        let json = serde_json::to_string(&g).unwrap();
        assert_eq!(serde_json::from_str::<SrdfGraph>(&json).unwrap(), g);
    }
}
