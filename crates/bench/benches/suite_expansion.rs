//! Suite expansion: copy-on-write views versus clone-per-point, serial
//! versus pool-parallel.
//!
//! Expanding a suite used to clone the scenario's full `Configuration` once
//! per sweep point and derive the cache key from the clone. The redesign
//! mints a `ConfigView` per point — two `Arc` bumps plus a `Copy` cap — and
//! streams the key straight off the view, so per-point expansion is
//! allocation-free and the whole stage parallelises over the engine's
//! worker pool in deterministic 512-point chunks.
//!
//! Three measurements over the 10 000-point `sweep-10k` suite:
//!
//! * `clone_per_point` — the pre-refactor baseline, reconstructed from the
//!   public API: `with_capacity_cap` (a full deep clone of the
//!   configuration) plus `ScenarioKeySeed::key_for` on the clone, per point.
//! * `view_serial` — `expand_suite` at `--jobs 1`: the same keys, derived by
//!   streaming each view against the shared base, one reserved vector total.
//! * `view_pooled_j8` — `Engine::expand_suite`: the chunked expansion drained
//!   by eight pooled workers with slot-ordered reassembly. The speedup over
//!   `view_serial` scales with physical cores; on a single-core runner the
//!   chunk hand-off overhead makes it a wash, which is itself worth
//!   tracking — the pooled path must never be much *worse* than serial.

use bbs_engine::suites::sweep_10k_suite;
use bbs_engine::{expand_suite, Engine, RunSettings, ScenarioKeySeed};
use budget_buffer::with_capacity_cap;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn settings(jobs: usize) -> RunSettings {
    RunSettings {
        jobs,
        ..RunSettings::default()
    }
}

fn bench_suite_expansion(c: &mut Criterion) {
    let suite = sweep_10k_suite();
    let scenario = &suite.scenarios[0];
    let base = scenario.workload.resolve().unwrap();
    let caps = scenario.sweep.as_ref().unwrap().caps().unwrap();
    let options = scenario.resolved_options();
    let flow = scenario.resolved_flow().unwrap();

    let mut group = c.benchmark_group("suite_expansion_10k");
    group.sample_size(10);

    group.bench_function("clone_per_point", |b| {
        b.iter(|| {
            let seed = ScenarioKeySeed::new(&options, flow.as_str());
            let mut keys = Vec::with_capacity(caps.len());
            for &cap in &caps {
                let capped = with_capacity_cap(black_box(&base), cap);
                keys.push(seed.key_for(&capped));
            }
            black_box(keys)
        });
    });

    group.bench_function("view_serial", |b| {
        b.iter(|| expand_suite(black_box(&suite), &settings(1)).unwrap());
    });

    let engine = Engine::new(8);
    group.bench_function("view_pooled_j8", |b| {
        b.iter(|| {
            engine
                .expand_suite(black_box(&suite), &settings(8))
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_suite_expansion);
criterion_main!(benches);
