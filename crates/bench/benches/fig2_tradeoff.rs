//! Experiment E1/E2 (Figures 2a and 2b of the paper): the budget/buffer
//! trade-off of the producer/consumer task graph.
//!
//! The bench measures the time of one joint budget/buffer solve per buffer
//! capacity (the paper reports "milliseconds" with CPLEX) and of the full
//! ten-point sweep driven through the batch engine — once per-run (cold
//! cache), once against a shared warm in-memory cache, and once against a
//! warm *disk* store with a fresh in-memory cache per run (the `bbs
//! --cache-dir` re-invocation path), to keep both memoization speed-ups
//! honest. The data series themselves are printed by
//! `cargo run -p bbs-bench --bin figures -- fig2a` / `fig2b`.

use bbs_bench::{fig2_configuration, paper_options};
use bbs_engine::suites::fig2a_scenario;
use bbs_engine::{run_suite_with_cache, RunSettings, SolveCache, SolveStore, Suite};
use budget_buffer::{compute_mapping, with_capacity_cap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_single_solves(c: &mut Criterion) {
    let configuration = fig2_configuration();
    let options = paper_options();
    let mut group = c.benchmark_group("fig2a_single_capacity");
    for capacity in [1u64, 4, 7, 10] {
        let constrained = with_capacity_cap(&configuration, capacity);
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &constrained,
            |b, constrained| {
                b.iter(|| compute_mapping(black_box(constrained), &options).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_full_sweep(c: &mut Criterion) {
    let suite = Suite::new("bench", vec![fig2a_scenario()]);
    let settings = RunSettings::default();
    let mut group = c.benchmark_group("fig2a_full_sweep_1_to_10");
    group.bench_function("engine_cold_cache", |b| {
        b.iter(|| run_suite_with_cache(black_box(&suite), &settings, &SolveCache::new()).unwrap());
    });
    group.bench_function("engine_warm_cache", |b| {
        let cache = SolveCache::new();
        b.iter(|| run_suite_with_cache(black_box(&suite), &settings, &cache).unwrap());
    });
    group.bench_function("engine_warm_disk_store", |b| {
        let directory =
            std::env::temp_dir().join(format!("bbs-bench-disk-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&directory);
        // Populate once; every iteration then simulates a fresh process
        // (empty in-memory tier) answering the sweep from disk.
        let warm = SolveCache::with_store(SolveStore::open(&directory).unwrap());
        run_suite_with_cache(&suite, &settings, &warm).unwrap();
        b.iter(|| {
            let cache = SolveCache::with_store(SolveStore::open(&directory).unwrap());
            run_suite_with_cache(black_box(&suite), &settings, &cache).unwrap()
        });
        let _ = std::fs::remove_dir_all(&directory);
    });
    group.finish();
}

criterion_group!(benches, bench_single_solves, bench_full_sweep);
criterion_main!(benches);
