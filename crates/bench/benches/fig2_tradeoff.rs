//! Experiment E1/E2 (Figures 2a and 2b of the paper): the budget/buffer
//! trade-off of the producer/consumer task graph.
//!
//! The bench measures the time of one joint budget/buffer solve per buffer
//! capacity (the paper reports "milliseconds" with CPLEX) and of the full
//! ten-point sweep. The data series themselves are printed by
//! `cargo run -p bbs-bench --bin figures -- fig2a` / `fig2b`.

use bbs_bench::{fig2_configuration, paper_options, PAPER_CAPACITY_RANGE};
use budget_buffer::compute_mapping;
use budget_buffer::explore::{sweep_buffer_capacity, with_capacity_cap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_single_solves(c: &mut Criterion) {
    let configuration = fig2_configuration();
    let options = paper_options();
    let mut group = c.benchmark_group("fig2a_single_capacity");
    for capacity in [1u64, 4, 7, 10] {
        let constrained = with_capacity_cap(&configuration, capacity);
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &constrained,
            |b, constrained| {
                b.iter(|| compute_mapping(black_box(constrained), &options).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_full_sweep(c: &mut Criterion) {
    let configuration = fig2_configuration();
    let options = paper_options();
    c.bench_function("fig2a_full_sweep_1_to_10", |b| {
        b.iter(|| {
            sweep_buffer_capacity(black_box(&configuration), PAPER_CAPACITY_RANGE, &options)
                .unwrap()
        });
    });
}

criterion_group!(benches, bench_single_solves, bench_full_sweep);
criterion_main!(benches);
