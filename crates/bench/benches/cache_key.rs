//! Cache-key construction: the engine's per-sweep-point hot path.
//!
//! PR 4's contention bench showed per-item cost in memo-hit-heavy sweeps is
//! dominated by building the cache key, not by queue locks: the old key
//! serialised the full configuration to a canonical-JSON `String` (via an
//! owned `Value` tree) plus the options JSON for *every* point. This bench
//! pins the three generations of that cost:
//!
//! * `canonical_key_strings` — the old scheme: materialise the full
//!   [`CanonicalKey`] (configuration JSON + options JSON + fingerprint).
//! * `streaming_digest` — one allocation-free streaming digest of the
//!   configuration (what a stand-alone [`CacheKey::new`] costs beyond the
//!   options).
//! * `seed_key_for_sweep` — the engine's real path: a hoisted
//!   [`ScenarioKeySeed`] deriving all ten sweep-point keys (options and
//!   flow folded once, only each capped configuration streamed).
//!
//! Run on the paper's producer/consumer graph and on the 24-task random DAG
//! so both the tiny-model and big-model regimes stay measured.

use bbs_engine::{CacheKey, CanonicalKey, ScenarioKeySeed};
use bbs_taskgraph::presets::{PresetSpec, RandomWorkload};
use bbs_taskgraph::Configuration;
use budget_buffer::{with_capacity_cap, SolveOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn producer_consumer() -> Configuration {
    PresetSpec::named("producer-consumer").build().unwrap()
}

fn random_dag_24() -> Configuration {
    let random = RandomWorkload {
        num_tasks: 24,
        num_processors: 12,
        extra_edge_probability: 0.2,
        seed: 7 + 24,
        ..RandomWorkload::default()
    };
    PresetSpec::named("random-dag")
        .with_random(random)
        .build()
        .unwrap()
}

fn bench_key_construction(c: &mut Criterion) {
    let options = SolveOptions::default().prefer_budget_minimisation();
    let mut group = c.benchmark_group("cache_key");
    group.sample_size(50);
    for (label, base) in [("pc", producer_consumer()), ("dag24", random_dag_24())] {
        let capped: Vec<Configuration> = (1..=10u64)
            .map(|cap| with_capacity_cap(&base, cap))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("canonical_key_strings", label),
            &capped,
            |b, capped| {
                b.iter(|| {
                    for configuration in capped {
                        black_box(CanonicalKey::from_parts(
                            black_box(configuration),
                            &options,
                            "joint",
                        ));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming_digest", label),
            &capped,
            |b, capped| {
                b.iter(|| {
                    for configuration in capped {
                        black_box(black_box(configuration).canonical_digest());
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("seed_key_for_sweep", label),
            &capped,
            |b, capped| {
                b.iter(|| {
                    let seed = ScenarioKeySeed::new(&options, "joint");
                    for configuration in capped {
                        black_box(seed.key_for(black_box(configuration)));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("standalone_cache_key", label),
            &capped,
            |b, capped| {
                b.iter(|| {
                    for configuration in capped {
                        black_box(CacheKey::new(black_box(configuration), &options, "joint"));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_key_construction);
criterion_main!(benches);
