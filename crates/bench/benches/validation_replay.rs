//! Validation replay throughput: the post-solve stage in isolation.
//!
//! The validation stage replays every solved mapping on the discrete-event
//! scheduler simulator — after the solves, over an atomic task cursor, on
//! scoped threads or the parked engine workers. These measurements separate
//! that replay cost from the solve cost it rides behind:
//!
//! * `single_mapping` — one `validate_mapping` call on the solved
//!   producer/consumer mapping at the engine's default 256 iterations: the
//!   unit cost of one replay task.
//! * `paper_stage_serial` / `paper_stage_j4` — the whole stage
//!   (`validate_outcome` with `validate_all`) over the pre-solved 47-point
//!   `paper` outcome, at one and at four workers: stage overhead plus the
//!   cursor's scaling.
//! * `pooled_gen_smoke_warm` — a full pooled `run_suite` of the generated
//!   `gen-smoke` suite on a warm shared cache: with every solve a memo hit,
//!   the run is dominated by exactly the replay work `bbs validate` adds.

use bbs_engine::suites::{gen_smoke_suite, paper_suite};
use bbs_engine::{run_suite, validate_outcome, Engine, RunSettings, SolveCache};
use bbs_scheduler_sim::{validate_mapping, SimulationSettings};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

fn bench_validation_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation_replay");
    group.sample_size(10);

    // One pre-solved paper outcome, replayed fresh per iteration.
    let solved = run_suite(&paper_suite(), &RunSettings::with_jobs(4)).unwrap();
    let validate = |jobs| RunSettings {
        validate_all: true,
        jobs,
        ..RunSettings::default()
    };

    let pc = &solved.scenarios[0];
    let mapping = pc.points[0].result.as_ref().expect("fig2a cap 1 solves");
    let budgets: BTreeMap<_, _> = mapping.budgets().collect();
    let capacities: BTreeMap<_, _> = mapping.capacities().collect();
    let settings = SimulationSettings {
        iterations: RunSettings::default().simulation_iterations,
        ..SimulationSettings::default()
    };
    group.bench_function("single_mapping", |b| {
        b.iter(|| {
            black_box(validate_mapping(
                black_box(&pc.configuration),
                &budgets,
                &capacities,
                &settings,
            ))
        });
    });

    group.bench_function("paper_stage_serial", |b| {
        b.iter(|| {
            let mut outcome = solved.clone();
            validate_outcome(&mut outcome, &validate(1));
            black_box(outcome)
        });
    });
    group.bench_function("paper_stage_j4", |b| {
        b.iter(|| {
            let mut outcome = solved.clone();
            validate_outcome(&mut outcome, &validate(4));
            black_box(outcome)
        });
    });

    // Warm cache: every solve is a memo hit, so the pooled run's cost is
    // almost entirely the Validate assignments and their replays.
    let engine = Engine::new(4);
    let cache = Arc::new(SolveCache::new());
    let suite = gen_smoke_suite();
    engine
        .run_suite_with_cache(&suite, &validate(4), &cache)
        .unwrap();
    group.bench_function("pooled_gen_smoke_warm", |b| {
        b.iter(|| {
            black_box(
                engine
                    .run_suite_with_cache(&suite, &validate(4), &cache)
                    .unwrap(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_validation_replay);
criterion_main!(benches);
