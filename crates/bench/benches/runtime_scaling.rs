//! Experiment E4: run-time scaling of the joint computation.
//!
//! The paper reports a run-time of "milliseconds" for its (tiny) examples
//! and argues the approach scales because the SOCP has polynomial
//! complexity. This bench measures the solve time on random streaming DAGs
//! of increasing size so the scaling trend can be inspected directly
//! (`figures -- runtime` prints a table of the same data).

use bbs_bench::{paper_options, runtime_workloads};
use budget_buffer::compute_mapping;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_runtime_scaling(c: &mut Criterion) {
    let options = paper_options();
    let mut group = c.benchmark_group("runtime_scaling");
    group.sample_size(10);
    for (name, configuration) in runtime_workloads() {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &configuration,
            |b, configuration| {
                b.iter(|| compute_mapping(black_box(configuration), &options).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_scaling);
criterion_main!(benches);
