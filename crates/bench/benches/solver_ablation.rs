//! Experiment E5: solver and flow ablations.
//!
//! Two comparisons motivated by the paper's introduction:
//!
//! * **Joint SOCP versus the two-phase baseline** — how much extra work the
//!   traditional "budgets first, buffers second" flow performs, and where it
//!   fails outright (false negatives are exercised in the tests; here we
//!   time the successful cases).
//! * **Interior-point SOCP versus cutting-plane LP loop** — the cost of not
//!   having a one-shot conic formulation.

use bbs_bench::{fig2_configuration, fig3_configuration, paper_options};
use budget_buffer::explore::with_capacity_cap;
use budget_buffer::two_phase::{compute_mapping_two_phase, BudgetPolicy};
use budget_buffer::{compute_mapping, SolveOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_joint_vs_two_phase(c: &mut Criterion) {
    let configuration = fig2_configuration();
    let options = paper_options();
    let mut group = c.benchmark_group("joint_vs_two_phase");
    group.bench_function("joint_socp", |b| {
        b.iter(|| compute_mapping(black_box(&configuration), &options).unwrap());
    });
    group.bench_function("two_phase_min_budget", |b| {
        b.iter(|| {
            compute_mapping_two_phase(
                black_box(&configuration),
                BudgetPolicy::ThroughputMinimum,
                &options,
            )
            .unwrap()
        });
    });
    group.bench_function("two_phase_fair_share", |b| {
        b.iter(|| {
            compute_mapping_two_phase(black_box(&configuration), BudgetPolicy::FairShare, &options)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_interior_point_vs_cutting_plane(c: &mut Criterion) {
    let configuration = with_capacity_cap(&fig3_configuration(), 4);
    let ipm_options = paper_options();
    let cp_options = SolveOptions::default()
        .prefer_budget_minimisation()
        .with_cutting_plane();
    let mut group = c.benchmark_group("socp_vs_cutting_plane");
    group.bench_function("interior_point", |b| {
        b.iter(|| compute_mapping(black_box(&configuration), &ipm_options).unwrap());
    });
    group.bench_function("cutting_plane", |b| {
        b.iter(|| compute_mapping(black_box(&configuration), &cp_options).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_joint_vs_two_phase,
    bench_interior_point_vs_cutting_plane
);
criterion_main!(benches);
