//! Scheduler contention: work-stealing deques vs the shared-queue baseline.
//!
//! The paper's figure 2/3 sweeps are a many-small-points workload: hundreds
//! of work items whose per-item cost collapses to a memo-cache hit once the
//! distinct instances are solved. That is exactly where a single shared
//! queue serialises the pool — every pop takes the one lock — and where
//! per-worker deques pay off: workers drain their own shard lock-free of
//! each other and only touch a victim's deque when they run dry.
//!
//! The synthetic suite below has 500 single-point scenarios over one tiny
//! workload (one distinct cache key), so a run is one real solve plus 499
//! memo hits: per-item work is a few microseconds and the measured spread
//! between `shared_queue` and `work_stealing` is scheduler overhead, not
//! solver time. A cold-cache group with distinct keys per scenario batch is
//! included so the stealing pool is also exercised under real solve load.

use bbs_engine::{
    run_suite, Engine, RunSettings, Scenario, SolveCache, Suite, SweepSpec, WorkloadSpec,
};
use bbs_taskgraph::presets::PresetSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// `points` single-point scenarios over one shared tiny workload: one
/// distinct solve, `points - 1` memo hits — a pure scheduling stress.
fn contention_suite(points: usize) -> Suite {
    let scenarios = (0..points)
        .map(|i| {
            Scenario::new(
                &format!("p{i:04}"),
                WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
            )
            .with_sweep(SweepSpec::list([4u64]))
        })
        .collect();
    Suite::new("contention", scenarios)
}

/// A smaller suite whose scenarios sweep distinct caps, so every item is a
/// real solve: the stealing pool under actual load imbalance.
fn solve_suite(scenarios: usize) -> Suite {
    let scenarios = (0..scenarios)
        .map(|i| {
            Scenario::new(
                &format!("s{i:02}"),
                WorkloadSpec::preset(PresetSpec::named("producer-consumer")),
            )
            .with_sweep(SweepSpec::range(1, 6))
        })
        .collect();
    Suite::new("solves", scenarios)
}

fn settings(jobs: usize, steal: bool) -> RunSettings {
    RunSettings {
        jobs,
        steal,
        ..RunSettings::default()
    }
}

fn bench_memo_hit_storm(c: &mut Criterion) {
    let suite = contention_suite(500);
    let mut group = c.benchmark_group("executor_contention_500pt");
    group.sample_size(20);
    for jobs in [1usize, 4, 8] {
        group.bench_function(format!("shared_queue_j{jobs}"), |b| {
            b.iter(|| run_suite(black_box(&suite), &settings(jobs, false)).unwrap());
        });
        group.bench_function(format!("work_stealing_j{jobs}"), |b| {
            b.iter(|| run_suite(black_box(&suite), &settings(jobs, true)).unwrap());
        });
        // The reusable pool: same scheduler as `work_stealing`, but the
        // worker threads are spawned once and parked between runs — the
        // delta against `work_stealing_jN` is pure thread spawn/teardown.
        let engine = Engine::new(jobs);
        group.bench_function(format!("pooled_j{jobs}"), |b| {
            b.iter(|| {
                // A fresh cache per run, like `run_suite`, so the workload
                // (1 solve + 499 memo hits) is identical.
                engine
                    .run_suite_with_cache(
                        black_box(&suite),
                        &settings(jobs, true),
                        &Arc::new(SolveCache::new()),
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_real_solves(c: &mut Criterion) {
    let suite = solve_suite(4);
    let mut group = c.benchmark_group("executor_real_solves_24pt");
    group.sample_size(10);
    group.bench_function("shared_queue_j8", |b| {
        b.iter(|| run_suite(black_box(&suite), &settings(8, false)).unwrap());
    });
    group.bench_function("work_stealing_j8", |b| {
        b.iter(|| run_suite(black_box(&suite), &settings(8, true)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_memo_hit_storm, bench_real_solves);
criterion_main!(benches);
