//! Service round-trip throughput: the full socket path against a live
//! in-process server.
//!
//! Each iteration is one complete client interaction over a persistent
//! connection — request frame out, streamed point replies and the final
//! report frame back — so the measurement covers JSON framing, the
//! bounded queue, the dispatcher hand-off, and the shared engine/cache,
//! not just the solve.
//!
//! Three measurements:
//!
//! * `smoke_round_trip_warm` — submit the 8-point `smoke` suite on a warm
//!   shared cache: the per-submission service overhead once solving is
//!   (almost) free. This is the number the service layer itself owns.
//! * `stats_round_trip` — the cheapest possible request/reply pair: a
//!   protocol floor independent of any solving.
//! * `burst_4_clients` — four connections each submitting `smoke` once,
//!   concurrently: queue admission, fairness rotation and reply streaming
//!   under real contention.

use bbs_engine::serve::{read_reply, send_request, Request, ServeConfig, Server};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::TcpStream;

/// Drives one `"run"` to completion, returning the report text length.
fn round_trip(stream: &mut TcpStream, request: &Request) -> usize {
    send_request(stream, request).unwrap();
    loop {
        let reply = read_reply(stream).unwrap().expect("server stays up");
        match reply.kind.as_str() {
            "accepted" | "point" => {}
            "report" => return reply.report.expect("report text").len(),
            other => panic!("unexpected reply kind `{other}`"),
        }
    }
}

fn bench_service_throughput(c: &mut Criterion) {
    let server = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);

    let mut stream = TcpStream::connect(addr).unwrap();
    let request = Request::run_builtin("smoke", 2);
    // Warm the shared cache once so the steady-state measurement isolates
    // the service overhead from first-solve cost.
    round_trip(&mut stream, &request);

    group.bench_function("smoke_round_trip_warm", |b| {
        b.iter(|| black_box(round_trip(&mut stream, black_box(&request))));
    });

    group.bench_function("stats_round_trip", |b| {
        b.iter(|| {
            send_request(&mut stream, &Request::stats()).unwrap();
            let reply = read_reply(&mut stream).unwrap().expect("server stays up");
            assert_eq!(reply.kind, "stats");
            black_box(reply.stats)
        });
    });

    group.bench_function("burst_4_clients", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(move || {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        round_trip(&mut stream, &Request::run_builtin("smoke", 2))
                    })
                })
                .collect();
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            black_box(total)
        });
    });

    group.finish();
    drop(stream);
    server.shutdown();
    server.wait();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
