//! Experiment E3 (Figure 3 of the paper): topology dependence of the
//! budget/buffer trade-off on the three-task chain.
//!
//! Measures the per-capacity joint solve and the whole sweep for the chain
//! `wa → wb → wc`, the latter through the batch engine; the series (per-task
//! budgets versus the common buffer capacity bound) is printed by
//! `figures -- fig3`.

use bbs_bench::{fig3_configuration, paper_options};
use bbs_engine::suites::fig3_scenario;
use bbs_engine::{run_suite_with_cache, RunSettings, SolveCache, Suite};
use budget_buffer::{compute_mapping, with_capacity_cap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_chain_solves(c: &mut Criterion) {
    let configuration = fig3_configuration();
    let options = paper_options();
    let mut group = c.benchmark_group("fig3_single_capacity");
    for capacity in [1u64, 5, 10] {
        let constrained = with_capacity_cap(&configuration, capacity);
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &constrained,
            |b, constrained| {
                b.iter(|| compute_mapping(black_box(constrained), &options).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_chain_sweep(c: &mut Criterion) {
    let suite = Suite::new("bench", vec![fig3_scenario()]);
    let settings = RunSettings::default();
    c.bench_function("fig3_full_sweep_1_to_10", |b| {
        b.iter(|| run_suite_with_cache(black_box(&suite), &settings, &SolveCache::new()).unwrap());
    });
}

criterion_group!(benches, bench_chain_solves, bench_chain_sweep);
criterion_main!(benches);
