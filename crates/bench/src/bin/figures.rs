//! Regenerates the data behind every figure of the paper as text tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bbs-bench --bin figures              # everything
//! cargo run --release -p bbs-bench --bin figures -- fig2a     # one figure
//! cargo run --release -p bbs-bench --bin figures -- fig2a fig3 runtime
//! cargo run --release -p bbs-bench --bin figures -- --csv fig2a
//! ```
//!
//! Available experiments: `fig2a`, `fig2b`, `fig3`, `runtime`, `ablation`,
//! `validate`. Each one is a built-in scenario of `bbs_engine::suites`; this
//! binary just selects scenarios and runs them through the batch engine —
//! `bbs run --suite paper` produces the same numbers, and the measured
//! results are recorded in `EXPERIMENTS.md`.

use bbs_engine::report::render_timing_summary;
use bbs_engine::suites::{
    ablation_scenarios, fig2a_scenario, fig2b_scenario, fig3_scenario, runtime_scenarios,
    validate_scenario,
};
use bbs_engine::{run_suite, RunSettings, Scenario, Suite, SuiteReport};
use std::process::ExitCode;

const EXPERIMENTS: [&str; 6] = ["fig2a", "fig2b", "fig3", "runtime", "ablation", "validate"];

fn scenarios_for(experiment: &str) -> Option<Vec<Scenario>> {
    match experiment {
        "fig2a" => Some(vec![fig2a_scenario()]),
        "fig2b" => Some(vec![fig2b_scenario()]),
        "fig3" => Some(vec![fig3_scenario()]),
        "runtime" => Some(runtime_scenarios()),
        "ablation" => Some(ablation_scenarios()),
        "validate" => Some(vec![validate_scenario()]),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let run: Vec<&str> = if selected.is_empty() {
        EXPERIMENTS.to_vec()
    } else {
        // Dedupe while keeping first-mention order: the scenarios become one
        // suite, and a suite rejects duplicate scenario names.
        let mut seen = Vec::new();
        for experiment in selected {
            if !seen.contains(&experiment) {
                seen.push(experiment);
            }
        }
        seen
    };

    let mut scenarios = Vec::new();
    for experiment in &run {
        match scenarios_for(experiment) {
            Some(batch) => scenarios.extend(batch),
            None => {
                eprintln!(
                    "unknown experiment '{experiment}'; known: {}",
                    EXPERIMENTS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let suite = Suite::new("figures", scenarios);
    let outcome = match run_suite(&suite, &RunSettings::default()) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("figures failed: {error}");
            return ExitCode::FAILURE;
        }
    };
    let report = SuiteReport::from_outcome(&outcome);
    if csv {
        print!("{}", report.to_csv());
    } else {
        print!("{}", report.to_tables());
        print!("{}", render_timing_summary(&outcome));
    }

    let failures = outcome.unexpected_failures();
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (scenario, cap, error) in failures {
            let cap = cap.map(|c| format!(" cap {c}")).unwrap_or_default();
            eprintln!("experiment {scenario}{cap} failed: {error}");
        }
        ExitCode::FAILURE
    }
}
