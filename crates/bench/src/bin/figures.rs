//! Regenerates the data behind every figure of the paper as text tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bbs-bench --bin figures              # everything
//! cargo run --release -p bbs-bench --bin figures -- fig2a     # one figure
//! cargo run --release -p bbs-bench --bin figures -- fig2a fig3 runtime
//! cargo run --release -p bbs-bench --bin figures -- --csv fig2a
//! ```
//!
//! Available experiments: `fig2a`, `fig2b`, `fig3`, `runtime`, `ablation`,
//! `validate`. The measured numbers are recorded in `EXPERIMENTS.md`.

use bbs_bench::{
    fig2_sweep, fig3_sweep, mapping_to_simulation_maps, paper_options, runtime_workloads,
};
use bbs_scheduler_sim::{simulate_mapping, SimulationSettings};
use budget_buffer::explore::with_capacity_cap;
use budget_buffer::report::{derivative_table, format_table, sweep_to_csv, tradeoff_table};
use budget_buffer::two_phase::{compute_mapping_two_phase, BudgetPolicy};
use budget_buffer::{compute_mapping, SolveOptions};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = ["fig2a", "fig2b", "fig3", "runtime", "ablation", "validate"];
    let run: Vec<&str> = if selected.is_empty() {
        all.to_vec()
    } else {
        selected
    };
    for experiment in &run {
        let result = match *experiment {
            "fig2a" => fig2a(csv),
            "fig2b" => fig2b(),
            "fig3" => fig3(csv),
            "runtime" => runtime(),
            "ablation" => ablation(),
            "validate" => validate(),
            other => {
                eprintln!("unknown experiment '{other}'; known: {}", all.join(", "));
                return ExitCode::FAILURE;
            }
        };
        if let Err(message) = result {
            eprintln!("experiment {experiment} failed: {message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn fig2a(csv: bool) -> Result<(), String> {
    println!("== Figure 2(a): budget vs. buffer capacity (producer/consumer) ==");
    let (configuration, points) = fig2_sweep().map_err(|e| e.to_string())?;
    if csv {
        print!("{}", sweep_to_csv(&configuration, &points));
    } else {
        print!("{}", tradeoff_table(&configuration, &points));
    }
    println!();
    Ok(())
}

fn fig2b() -> Result<(), String> {
    println!("== Figure 2(b): budget reduction per extra container ==");
    let (_, points) = fig2_sweep().map_err(|e| e.to_string())?;
    print!("{}", derivative_table(&points));
    println!();
    Ok(())
}

fn fig3(csv: bool) -> Result<(), String> {
    println!("== Figure 3: per-task budgets vs. common buffer capacity (chain wa->wb->wc) ==");
    let (configuration, points) = fig3_sweep().map_err(|e| e.to_string())?;
    if csv {
        print!("{}", sweep_to_csv(&configuration, &points));
    } else {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.capacity_cap.to_string(),
                    p.mapping
                        .budget_of_named(&configuration, "wa")
                        .unwrap_or(0)
                        .to_string(),
                    p.mapping
                        .budget_of_named(&configuration, "wb")
                        .unwrap_or(0)
                        .to_string(),
                    p.mapping
                        .budget_of_named(&configuration, "wc")
                        .unwrap_or(0)
                        .to_string(),
                    p.total_budget().to_string(),
                    format!("{:.2}", p.solve_time.as_secs_f64() * 1e3),
                ]
            })
            .collect();
        print!(
            "{}",
            format_table(
                &[
                    "capacity (containers)",
                    "budget wa",
                    "budget wb",
                    "budget wc",
                    "total",
                    "solve time (ms)",
                ],
                &rows,
            )
        );
    }
    println!();
    Ok(())
}

fn runtime() -> Result<(), String> {
    println!("== Run-time scaling: joint solve time vs. problem size ==");
    let options = paper_options();
    let mut rows = Vec::new();
    for (name, configuration) in runtime_workloads() {
        let start = Instant::now();
        let mapping = compute_mapping(&configuration, &options).map_err(|e| e.to_string())?;
        let elapsed = start.elapsed();
        rows.push(vec![
            name,
            configuration.num_tasks().to_string(),
            configuration.num_buffers().to_string(),
            mapping.solver_iterations().to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
        ]);
    }
    print!(
        "{}",
        format_table(
            &[
                "workload",
                "tasks",
                "buffers",
                "IPM iterations",
                "solve time (ms)"
            ],
            &rows,
        )
    );
    println!();
    Ok(())
}

fn ablation() -> Result<(), String> {
    println!("== Ablation: joint SOCP vs. two-phase flows, interior point vs. cutting plane ==");
    let configuration = bbs_bench::fig2_configuration();
    let options = paper_options();
    let mut rows = Vec::new();

    let timed = |label: &str,
                 rows: &mut Vec<Vec<String>>,
                 f: &dyn Fn() -> Result<(u64, u64, bool), String>| {
        let start = Instant::now();
        let outcome = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Ok((budget, storage, feasible)) => rows.push(vec![
                label.to_string(),
                if feasible {
                    "yes"
                } else {
                    "NO (false negative)"
                }
                .to_string(),
                budget.to_string(),
                storage.to_string(),
                format!("{ms:.2}"),
            ]),
            Err(e) => rows.push(vec![
                label.to_string(),
                format!("NO ({e})"),
                "-".to_string(),
                "-".to_string(),
                format!("{ms:.2}"),
            ]),
        }
    };

    // Unconstrained buffers: every flow succeeds; compare costs.
    timed("joint SOCP (interior point)", &mut rows, &|| {
        compute_mapping(&configuration, &options)
            .map(|m| (m.total_budget(), m.total_storage(&configuration), true))
            .map_err(|e| e.to_string())
    });
    timed("joint SOCP (cutting plane)", &mut rows, &|| {
        compute_mapping(
            &configuration,
            &SolveOptions::default()
                .prefer_budget_minimisation()
                .with_cutting_plane(),
        )
        .map(|m| (m.total_budget(), m.total_storage(&configuration), true))
        .map_err(|e| e.to_string())
    });
    timed("two-phase (min budgets)", &mut rows, &|| {
        compute_mapping_two_phase(&configuration, BudgetPolicy::ThroughputMinimum, &options)
            .map(|o| {
                (
                    o.mapping.total_budget(),
                    o.mapping.total_storage(&configuration),
                    true,
                )
            })
            .map_err(|e| e.to_string())
    });
    timed("two-phase (fair share)", &mut rows, &|| {
        compute_mapping_two_phase(&configuration, BudgetPolicy::FairShare, &options)
            .map(|o| {
                (
                    o.mapping.total_budget(),
                    o.mapping.total_storage(&configuration),
                    true,
                )
            })
            .map_err(|e| e.to_string())
    });

    // Capped buffers (3 containers): the joint flow adapts the budgets, the
    // minimum-budget two-phase flow reports a false negative.
    let capped = with_capacity_cap(&configuration, 3);
    timed("joint SOCP, buffers capped at 3", &mut rows, &|| {
        compute_mapping(&capped, &options)
            .map(|m| (m.total_budget(), m.total_storage(&capped), true))
            .map_err(|e| e.to_string())
    });
    timed("two-phase (min budgets), capped at 3", &mut rows, &|| {
        compute_mapping_two_phase(&capped, BudgetPolicy::ThroughputMinimum, &options)
            .map(|o| {
                (
                    o.mapping.total_budget(),
                    o.mapping.total_storage(&capped),
                    true,
                )
            })
            .map_err(|e| e.to_string())
    });

    print!(
        "{}",
        format_table(
            &[
                "flow",
                "feasible",
                "total budget",
                "total storage",
                "time (ms)"
            ],
            &rows,
        )
    );
    println!();
    Ok(())
}

fn validate() -> Result<(), String> {
    println!("== Validation: computed mappings executed on the TDM scheduler simulator ==");
    let options = paper_options();
    let mut rows = Vec::new();
    for capacity in [1u64, 2, 4, 6, 8, 10] {
        let configuration = with_capacity_cap(&bbs_bench::fig2_configuration(), capacity);
        let mapping = compute_mapping(&configuration, &options).map_err(|e| e.to_string())?;
        let (budgets, capacities) = mapping_to_simulation_maps(&mapping);
        let settings = SimulationSettings {
            iterations: 256,
            ..SimulationSettings::default()
        };
        let result = simulate_mapping(&configuration, &budgets, &capacities, &settings)
            .map_err(|e| e.to_string())?;
        rows.push(vec![
            capacity.to_string(),
            mapping
                .budget_of_named(&configuration, "wa")
                .unwrap_or(0)
                .to_string(),
            format!("{:.3}", result.worst_period()),
            "10.000".to_string(),
            if result.worst_period() <= 10.0 + 40.0 / 127.0 {
                "ok"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
    }
    print!(
        "{}",
        format_table(
            &[
                "capacity (containers)",
                "budget (cycles)",
                "measured period",
                "required period",
                "guarantee",
            ],
            &rows,
        )
    );
    println!();
    Ok(())
}
