//! Shared workloads and helpers for the benchmark harness.
//!
//! Every experiment of the paper (see `DESIGN.md`, experiment index) is
//! driven from here so that the Criterion benches and the `figures` binary
//! produce their numbers from exactly the same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bbs_taskgraph::presets::{
    chain3, producer_consumer, random_dag, PaperParameters, RandomWorkload,
};
use bbs_taskgraph::{BufferRef, Configuration, TaskRef};
use budget_buffer::explore::{sweep_buffer_capacity, TradeoffPoint};
use budget_buffer::{Mapping, MappingError, SolveOptions};
use std::collections::BTreeMap;

/// The buffer-capacity range swept in the paper's experiments (1..=10
/// containers).
pub const PAPER_CAPACITY_RANGE: std::ops::RangeInclusive<u64> = 1..=10;

/// The solver options used for every paper experiment: budgets are minimised
/// with priority, buffer storage as a tie-breaker.
pub fn paper_options() -> SolveOptions {
    SolveOptions::default().prefer_budget_minimisation()
}

/// The producer/consumer configuration of Experiment 1 (Figures 2a and 2b),
/// without a capacity cap (the sweep applies the caps).
pub fn fig2_configuration() -> Configuration {
    producer_consumer(PaperParameters::default(), None)
}

/// The three-task chain of Experiment 2 (Figure 3), without capacity caps.
pub fn fig3_configuration() -> Configuration {
    chain3(PaperParameters::default(), None)
}

/// Runs the Figure 2(a)/(b) sweep: one joint solve per buffer capacity.
///
/// # Errors
///
/// Propagates solver errors; the paper set-up is feasible for every capacity
/// in the range, so an error indicates a regression.
pub fn fig2_sweep() -> Result<(Configuration, Vec<TradeoffPoint>), MappingError> {
    let configuration = fig2_configuration();
    let points = sweep_buffer_capacity(&configuration, PAPER_CAPACITY_RANGE, &paper_options())?;
    Ok((configuration, points))
}

/// Runs the Figure 3 sweep over the chain topology.
///
/// # Errors
///
/// Propagates solver errors.
pub fn fig3_sweep() -> Result<(Configuration, Vec<TradeoffPoint>), MappingError> {
    let configuration = fig3_configuration();
    let points = sweep_buffer_capacity(&configuration, PAPER_CAPACITY_RANGE, &paper_options())?;
    Ok((configuration, points))
}

/// Random workloads of increasing size for the run-time scaling experiment
/// (the paper's "run-time is milliseconds" claim, E4 in DESIGN.md).
///
/// The sizes are chosen so the full Criterion sweep stays in the minutes
/// range on a laptop: the dense interior-point iteration is cubic in the
/// number of constraint rows, and the paper's own instances have 2–3 tasks.
pub fn runtime_workloads() -> Vec<(String, Configuration)> {
    [4usize, 8, 12, 16, 24]
        .into_iter()
        .map(|n| {
            let params = RandomWorkload {
                num_tasks: n,
                num_processors: (n / 2).max(2),
                extra_edge_probability: 0.2,
                seed: 7 + n as u64,
                ..RandomWorkload::default()
            };
            (format!("{n}-task random DAG"), random_dag(&params))
        })
        .collect()
}

/// Converts a mapping into the plain maps the TDM scheduler simulator
/// consumes.
pub fn mapping_to_simulation_maps(
    mapping: &Mapping,
) -> (BTreeMap<TaskRef, u64>, BTreeMap<BufferRef, u64>) {
    (mapping.budgets().collect(), mapping.capacities().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use budget_buffer::compute_mapping;

    #[test]
    fn fig2_sweep_produces_ten_points() {
        let (c, points) = fig2_sweep().unwrap();
        assert_eq!(points.len(), 10);
        assert_eq!(c.num_tasks(), 2);
    }

    #[test]
    fn runtime_workloads_are_solvable() {
        for (name, configuration) in runtime_workloads().into_iter().take(2) {
            let mapping = compute_mapping(&configuration, &paper_options())
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            assert!(mapping.total_budget() > 0, "{name} produced no budgets");
        }
    }

    #[test]
    fn simulation_maps_cover_every_task_and_buffer() {
        let c = fig2_configuration();
        let mapping = compute_mapping(&c, &paper_options()).unwrap();
        let (budgets, capacities) = mapping_to_simulation_maps(&mapping);
        assert_eq!(budgets.len(), c.num_tasks());
        assert_eq!(capacities.len(), c.num_buffers());
    }
}
