//! Shared workloads and helpers for the benchmark harness.
//!
//! Every experiment of the paper is *declared* as a scenario in
//! `bbs_engine::suites` and *executed* by the engine's batch executor; this
//! crate only adapts the engine's outcomes to the shapes the Criterion
//! benches and the `figures` binary consume, so there is exactly one code
//! path from scenario to numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bbs_engine::suites::{fig2a_scenario, fig3_scenario, runtime_scenarios};
use bbs_engine::{run_scenario, RunSettings, Scenario, ScenarioOutcome};
use bbs_taskgraph::{BufferRef, Configuration, TaskRef};
use budget_buffer::{Mapping, MappingError, SolveOptions, TradeoffPoint};
use std::collections::BTreeMap;

/// The buffer-capacity range swept in the paper's experiments (1..=10
/// containers).
pub const PAPER_CAPACITY_RANGE: std::ops::RangeInclusive<u64> = 1..=10;

/// The solver options used for every paper experiment: budgets are minimised
/// with priority, buffer storage as a tie-breaker.
pub fn paper_options() -> SolveOptions {
    SolveOptions::default().prefer_budget_minimisation()
}

/// The producer/consumer configuration of Experiment 1 (Figures 2a and 2b),
/// without a capacity cap (the sweep applies the caps).
pub fn fig2_configuration() -> Configuration {
    fig2a_scenario()
        .workload
        .resolve()
        .expect("built-in fig2a workload is valid")
}

/// The three-task chain of Experiment 2 (Figure 3), without capacity caps.
pub fn fig3_configuration() -> Configuration {
    fig3_scenario()
        .workload
        .resolve()
        .expect("built-in fig3 workload is valid")
}

/// Runs a built-in sweep scenario through the engine and adapts the outcome
/// to the classic `(configuration, points)` shape.
///
/// # Errors
///
/// Propagates the first solver error of the sweep.
///
/// # Panics
///
/// Panics when the scenario itself is invalid (unknown preset or flow,
/// empty sweep) or has no sweep — this helper is the bench harness's
/// adapter for the *built-in* sweep scenarios, which are validated by the
/// engine's own tests; arbitrary user scenarios should go through
/// [`bbs_engine::run_scenario`] directly.
pub fn scenario_sweep(
    scenario: &Scenario,
) -> Result<(Configuration, Vec<TradeoffPoint>), MappingError> {
    let outcome =
        run_scenario(scenario, &RunSettings::default()).expect("built-in scenarios validate");
    let points = outcome_to_tradeoff_points(&outcome)?;
    Ok((outcome.configuration, points))
}

/// Converts an engine outcome into the [`TradeoffPoint`] series the report
/// helpers in `budget_buffer::report` consume.
///
/// # Errors
///
/// Propagates the first solver error of the sweep.
///
/// # Panics
///
/// Panics if the outcome is not from a sweep scenario: a [`TradeoffPoint`]
/// is *defined* by its capacity cap, so an uncapped single solve has no
/// representation here (a cap of 0 would be rejected everywhere else).
pub fn outcome_to_tradeoff_points(
    outcome: &ScenarioOutcome,
) -> Result<Vec<TradeoffPoint>, MappingError> {
    outcome
        .points
        .iter()
        .map(|point| {
            let mapping: Mapping = point.result.clone()?;
            Ok(TradeoffPoint {
                capacity_cap: point
                    .capacity_cap
                    .expect("tradeoff points require a sweep scenario (capacity-capped points)"),
                mapping,
                solve_time: point.solve_time,
            })
        })
        .collect()
}

/// Runs the Figure 2(a)/(b) sweep through the engine: one joint solve per
/// buffer capacity.
///
/// # Errors
///
/// Propagates solver errors; the paper set-up is feasible for every capacity
/// in the range, so an error indicates a regression.
pub fn fig2_sweep() -> Result<(Configuration, Vec<TradeoffPoint>), MappingError> {
    scenario_sweep(&fig2a_scenario())
}

/// Runs the Figure 3 sweep over the chain topology through the engine.
///
/// # Errors
///
/// Propagates solver errors.
pub fn fig3_sweep() -> Result<(Configuration, Vec<TradeoffPoint>), MappingError> {
    scenario_sweep(&fig3_scenario())
}

/// Random workloads of increasing size for the run-time scaling experiment
/// (the paper's "run-time is milliseconds" claim, E4 in DESIGN.md), resolved
/// from the engine's built-in `runtime-*` scenarios.
pub fn runtime_workloads() -> Vec<(String, Configuration)> {
    runtime_scenarios()
        .into_iter()
        .map(|scenario| {
            let configuration = scenario
                .workload
                .resolve()
                .expect("built-in runtime workloads are valid");
            (
                format!("{}-task random DAG", configuration.num_tasks()),
                configuration,
            )
        })
        .collect()
}

/// Converts a mapping into the plain maps the TDM scheduler simulator
/// consumes.
pub fn mapping_to_simulation_maps(
    mapping: &Mapping,
) -> (BTreeMap<TaskRef, u64>, BTreeMap<BufferRef, u64>) {
    (mapping.budgets().collect(), mapping.capacities().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use budget_buffer::{compute_mapping, sweep_buffer_capacity};

    #[test]
    fn fig2_sweep_produces_ten_points() {
        let (c, points) = fig2_sweep().unwrap();
        assert_eq!(points.len(), 10);
        assert_eq!(c.num_tasks(), 2);
    }

    #[test]
    fn engine_sweep_equals_direct_sweep() {
        let (c, engine_points) = fig2_sweep().unwrap();
        let direct = sweep_buffer_capacity(&c, PAPER_CAPACITY_RANGE, &paper_options()).unwrap();
        assert_eq!(engine_points.len(), direct.len());
        for (engine_point, direct_point) in engine_points.iter().zip(&direct) {
            assert_eq!(engine_point.capacity_cap, direct_point.capacity_cap);
            assert_eq!(engine_point.mapping, direct_point.mapping);
        }
    }

    #[test]
    fn runtime_workloads_are_solvable() {
        for (name, configuration) in runtime_workloads().into_iter().take(2) {
            let mapping = compute_mapping(&configuration, &paper_options())
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            assert!(mapping.total_budget() > 0, "{name} produced no budgets");
        }
    }

    #[test]
    fn simulation_maps_cover_every_task_and_buffer() {
        let c = fig2_configuration();
        let mapping = compute_mapping(&c, &paper_options()).unwrap();
        let (budgets, capacities) = mapping_to_simulation_maps(&mapping);
        assert_eq!(budgets.len(), c.num_tasks());
        assert_eq!(capacities.len(), c.num_buffers());
    }
}
