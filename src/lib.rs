//! Umbrella crate for the budget/buffer co-computation workspace.
//!
//! This package exists to host the workspace-level integration tests in
//! `tests/` and the runnable examples in `examples/`. It simply re-exports the
//! member crates so that examples and tests can use a single, convenient
//! namespace.
//!
//! The actual library lives in the member crates:
//!
//! * [`budget_buffer`] — the paper's contribution (joint budget/buffer sizing).
//! * [`bbs_taskgraph`] — application and platform model.
//! * [`bbs_srdf`] — single-rate dataflow analysis.
//! * [`bbs_conic`] — LP/SOCP interior-point solver.
//! * [`bbs_linalg`] — dense linear algebra kernels.
//! * [`bbs_scheduler_sim`] — TDM budget-scheduler simulator.
//! * [`bbs_engine`] — batch-solving engine (scenarios, executor, cache, `bbs` CLI).

pub use bbs_conic as conic;
pub use bbs_engine as engine;
pub use bbs_linalg as linalg;
pub use bbs_scheduler_sim as scheduler_sim;
pub use bbs_srdf as srdf;
pub use bbs_taskgraph as taskgraph;
pub use budget_buffer;
